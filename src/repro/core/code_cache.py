"""Code cache address allocation and capacity management.

Fragments live in the simulated code-cache region of the address space
(disjoint from all application regions — part of transparency).  A
thread's cache is split into a basic-block cache and a trace cache,
mirroring Section 2.

Capacity management (paper Section 6) is per-unit and policy-driven:

* ``policy="flush"`` — allocation is a plain bump allocator; when the
  configured limit is reached the whole unit is flushed (the
  coarse-grained strategy the paper describes for DELI, and
  DynamoRIO's own fallback).  This is the default and reproduces the
  pre-adaptive behavior bit for bit.
* ``policy="fifo"`` — DynamoRIO's own scheme: single-fragment FIFO
  eviction with empty-slot reuse.  Freed ranges go on a free list
  (first-fit allocation, adjacent holes coalesced, the bump frontier
  retracted when the trailing hole reaches it); under pressure the
  runtime evicts resident fragments one at a time in allocation order
  (the eviction pointer) until the incoming fragment fits.

Either policy may be combined with *adaptive sizing*
(``adaptive=True``): the unit starts small and monitors the
regenerated-vs-replaced ratio — of the fragments evicted in the
current resize epoch, how many were rebuilt — and when the ratio
exceeds ``regen_threshold`` at an epoch boundary the unit grows by
``grow_factor``, sizing itself to the application's working set
instead of thrashing (Section 6.1).

An *empty* cache always accepts any fragment regardless of the limit:
a single fragment larger than the whole unit must still be placeable
once eviction has made room, as the sole resident.

:class:`CodeRegionMap` is the cache-consistency side table (paper
Section 6.2): it maps application-code byte ranges back to the
fragments translated from them, so a store into translated code can
invalidate exactly the stale fragments (including traces that stitched
the written block).
"""

from collections import deque

from repro.machine.memory import WATCH_SHIFT

# Evictions per adaptive resize epoch: at every RESIZE_EPOCH-th
# eviction the unit compares its regenerated/evicted ratio against the
# configured threshold and grows when churn is too high.  Small enough
# that an undersized unit reacts within a few pressure events, large
# enough that one unlucky eviction cannot trigger growth.
RESIZE_EPOCH = 16

# Unit size an adaptive cache starts from when no explicit
# code_cache_limit is configured ("start small, let the working set
# pull the size up").
ADAPTIVE_INITIAL_LIMIT = 2048


class CacheFullError(Exception):
    """Internal signal: allocation exceeded the configured limit."""


class CacheUnit:
    """One cache unit (bb or trace) with free-list allocation.

    ``policy`` only labels which pressure strategy the *runtime*
    applies to this unit (the eviction loop lives at the delete
    chokepoint in ``core/runtime.py``); the unit itself just accounts
    for space.  Under ``"flush"`` nothing is ever individually freed
    before the whole-unit flush, so the free list stays empty and the
    allocator degenerates to the original bump allocator.
    """

    def __init__(self, name, base, limit=None, policy="flush",
                 adaptive=False, regen_threshold=0.5, grow_factor=2.0):
        self.name = name
        self.base = base
        self.limit = limit
        self.policy = policy
        self.cursor = base
        self.fragments = {}  # tag -> Fragment
        # Free-list allocator state: holes sorted by address, with the
        # running total kept alongside so occupancy stays O(1).
        self._holes = []  # list of [addr, size], address-sorted
        self.free_bytes = 0
        # Allocation order (the FIFO eviction pointer walks it).  May
        # contain stale entries (removed/replaced fragments); they are
        # skipped lazily when the pointer advances.
        self._order = deque()
        # Adaptive sizing state.
        self.adaptive = adaptive
        self.regen_threshold = regen_threshold
        self.grow_factor = grow_factor
        self.initial_limit = limit
        self.evictions = 0  # fragments evicted (any policy), total
        self.regenerated = 0  # evicted tags seen again by allocate()
        self.resizes = 0
        self._epoch_evictions = 0
        self._epoch_regenerated = 0
        self._evicted_tags = set()

    # ------------------------------------------------------------ accounting

    def used(self):
        """Live bytes: the bump span minus the holes inside it."""
        return (self.cursor - self.base) - self.free_bytes

    def span(self):
        """High-water bytes: everything below the bump frontier."""
        return self.cursor - self.base

    def was_evicted(self, tag):
        """Whether ``tag`` was evicted and has not been rebuilt since
        (feeds the regenerated-vs-replaced churn ratio and the
        ``fragment_emit`` event's ``regen`` flag)."""
        return tag in self._evicted_tags

    def fragmentation(self):
        """Free-list shape: (free bytes, hole count, largest hole)."""
        largest = max((h[1] for h in self._holes), default=0)
        return self.free_bytes, len(self._holes), largest

    def occupancy(self):
        """Observability snapshot: bytes used, limit, resident count,
        fragmentation and churn (surfaced by the drtrace report and
        the cache_eviction / cache_evict / cache_resize events)."""
        free_bytes, holes, largest = self.fragmentation()
        return {
            "unit": self.name,
            "used": self.used(),
            "limit": self.limit,
            "fragments": len(self.fragments),
            "policy": self.policy,
            "free_bytes": free_bytes,
            "holes": holes,
            "largest_hole": largest,
            "evictions": self.evictions,
            "regenerated": self.regenerated,
            "resizes": self.resizes,
        }

    # ------------------------------------------------------------ allocation

    def can_fit(self, size):
        """Whether ``allocate`` would succeed for a ``size``-byte
        fragment without any eviction."""
        if not self.fragments:
            return True
        if any(hole[1] >= size for hole in self._holes):
            return True
        return self.limit is None or self.span() + size <= self.limit

    def allocate(self, fragment):
        size = fragment.size
        if self.policy == "flush":
            # The original bump allocator, bit for bit: an empty cache
            # always accepts (at the current cursor), space freed by
            # remove() is deliberately leaked until the next flush.
            if (
                self.limit is not None
                and self.used() + size > self.limit
                and self.fragments
            ):
                raise CacheFullError(self.name)
            addr = self.cursor
            self.cursor += size
        elif not self.fragments:
            # An empty cache always accepts (a single fragment larger
            # than the configured limit must still be placeable after
            # eviction has drained the unit — it becomes the sole
            # resident).  Reset the allocator so the unit is compact.
            self._holes = []
            self.free_bytes = 0
            self._order.clear()
            self.cursor = self.base
            addr = self.base
            self.cursor += size
        else:
            old = self.fragments.get(fragment.tag)
            if old is not None and old.cache_addr is not None:
                # Same-tag re-emission (e.g. a trace rebuilt for a head
                # whose recording was squashed): the old fragment stops
                # being a resident, so its slot becomes a hole.  Its
                # stale _order entry is skipped lazily.
                self._free_range(old.cache_addr, old.size)
            addr = self._take_hole(size)
            if addr is None:
                if self.limit is not None and self.span() + size > self.limit:
                    raise CacheFullError(self.name)
                addr = self.cursor
                self.cursor += size
        fragment.cache_addr = addr
        self.fragments[fragment.tag] = fragment
        self._order.append(fragment)
        if fragment.tag in self._evicted_tags:
            # A previously evicted block came back: retranslation
            # churn, the signal the adaptive heuristic watches.
            self._evicted_tags.discard(fragment.tag)
            self.regenerated += 1
            self._epoch_regenerated += 1
        return addr

    def _take_hole(self, size):
        """First-fit: claim the front of the first hole that fits."""
        holes = self._holes
        for i, hole in enumerate(holes):
            if hole[1] >= size:
                addr = hole[0]
                if hole[1] == size:
                    del holes[i]
                else:
                    hole[0] += size
                    hole[1] -= size
                self.free_bytes -= size
                return addr
        return None

    def _free_range(self, addr, size):
        """Return ``[addr, addr+size)`` to the free list, coalescing
        with adjacent holes and retracting the bump frontier when the
        trailing hole reaches it."""
        if size <= 0:
            return
        holes = self._holes
        lo = 0
        hi = len(holes)
        while lo < hi:  # insertion point by address
            mid = (lo + hi) // 2
            if holes[mid][0] < addr:
                lo = mid + 1
            else:
                hi = mid
        holes.insert(lo, [addr, size])
        self.free_bytes += size
        # Coalesce with the successor, then the predecessor.
        if lo + 1 < len(holes) and holes[lo][0] + holes[lo][1] == holes[lo + 1][0]:
            holes[lo][1] += holes[lo + 1][1]
            del holes[lo + 1]
        if lo > 0 and holes[lo - 1][0] + holes[lo - 1][1] == holes[lo][0]:
            holes[lo - 1][1] += holes[lo][1]
            del holes[lo]
        # Retract the frontier over a trailing hole: those bytes go
        # back to bump allocation (keeps span() an honest high-water
        # mark and the limit check from double-counting freed space).
        if holes and holes[-1][0] + holes[-1][1] == self.cursor:
            self.cursor = holes[-1][0]
            self.free_bytes -= holes[-1][1]
            del holes[-1]

    # --------------------------------------------------------------- queries

    def lookup(self, tag):
        return self.fragments.get(tag)

    def remove(self, fragment):
        existing = self.fragments.get(fragment.tag)
        if existing is fragment:
            del self.fragments[fragment.tag]
            if self.policy == "flush":
                # Pre-fifo behavior: the slot is leaked (reclaimed only
                # by the next whole-unit flush).
                pass
            elif not self.fragments:
                # Cheap full defragmentation: an empty unit is compact.
                self._holes = []
                self.free_bytes = 0
                self._order.clear()
                self.cursor = self.base
            elif fragment.cache_addr is not None:
                self._free_range(fragment.cache_addr, fragment.size)
            # _order entry is dropped lazily by next_eviction().

    # -------------------------------------------------------------- eviction

    def next_eviction(self):
        """The FIFO eviction pointer: the oldest resident fragment, or
        ``None`` when the unit is empty.  Stale order entries (removed,
        replaced, or already deleted fragments) are discarded on the
        way."""
        order = self._order
        fragments = self.fragments
        while order:
            fragment = order[0]
            if fragment.deleted or fragments.get(fragment.tag) is not fragment:
                order.popleft()
                continue
            return fragment
        return None

    def record_eviction(self, fragment):
        """Account one capacity eviction (single-fragment or as part
        of a whole-unit flush) for the adaptive churn ratio."""
        self.evictions += 1
        self._epoch_evictions += 1
        self._evicted_tags.add(fragment.tag)

    def check_resize(self):
        """Adaptive sizing: at a resize-epoch boundary, grow the unit
        when the regenerated/evicted ratio says the working set does
        not fit.  Returns ``(old_limit, new_limit)`` when the unit
        grew, else ``None``."""
        if not self.adaptive or self.limit is None:
            return None
        if self._epoch_evictions < RESIZE_EPOCH:
            return None
        ratio = self._epoch_regenerated / self._epoch_evictions
        self._epoch_evictions = 0
        self._epoch_regenerated = 0
        if ratio <= self.regen_threshold:
            return None
        old = self.limit
        self.limit = max(old + 1, int(old * self.grow_factor))
        self.resizes += 1
        return old, self.limit

    def flush(self):
        """Drop everything; returns the fragments that were resident."""
        dropped = list(self.fragments.values())
        self.fragments.clear()
        self._holes = []
        self.free_bytes = 0
        self._order.clear()
        self.cursor = self.base
        return dropped

    def __len__(self):
        return len(self.fragments)


class CodeRegionMap:
    """Application-code range -> translated fragments (cache consistency).

    Line-indexed (same granularity as the memory write watch): each
    registered fragment appears in the bucket of every line its source
    spans touch.  ``overlapping`` filters the bucket hits down to exact
    byte-range overlaps, so a store next to — but not into — translated
    code invalidates nothing.

    Entries carry the owning thread because caches are (by default)
    thread-private: the same application block may be translated once
    per thread, and an SMC store must invalidate every copy.
    """

    def __init__(self):
        self._by_page = {}  # line -> list of entries
        self._entries = {}  # id(fragment) -> (fragment, spans, thread)

    def __len__(self):
        return len(self._entries)

    def register(self, fragment, spans, thread, memory):
        """Track ``fragment`` as translated from ``spans`` and arm the
        memory write watch over those ranges."""
        spans = tuple(
            (int(start), int(end)) for start, end in spans if end > start
        )
        if not spans:
            return
        key = id(fragment)
        if key in self._entries:
            self.unregister(fragment)
        entry = (fragment, spans, thread)
        self._entries[key] = entry
        by_page = self._by_page
        for start, end in spans:
            memory.watch_range(start, end)
            for page in range(start >> WATCH_SHIFT, ((end - 1) >> WATCH_SHIFT) + 1):
                by_page.setdefault(page, []).append(entry)

    def unregister(self, fragment):
        entry = self._entries.pop(id(fragment), None)
        if entry is None:
            return
        by_page = self._by_page
        for start, end in entry[1]:
            for page in range(start >> WATCH_SHIFT, ((end - 1) >> WATCH_SHIFT) + 1):
                bucket = by_page.get(page)
                if bucket is None:
                    continue
                bucket[:] = [e for e in bucket if e is not entry]
                if not bucket:
                    del by_page[page]

    def overlapping(self, addr, size):
        """Entries whose source spans intersect ``[addr, addr+size)``,
        as ``(fragment, thread)`` pairs in registration order."""
        end = addr + size
        hits = []
        seen = set()
        for page in range(addr >> WATCH_SHIFT, ((end - 1) >> WATCH_SHIFT) + 1):
            for entry in self._by_page.get(page, ()):
                key = id(entry[0])
                if key in seen:
                    continue
                if any(s < end and addr < e for s, e in entry[1]):
                    seen.add(key)
                    hits.append((entry[0], entry[2]))
        return hits
