"""Closure compilation of fragments: the encode-into-cache step.

:func:`compile_fragment` translates a fragment's lowered op tuples
(``repro.core.emit``) into a flat tuple of *step closures* — the moral
equivalent of DynamoRIO's encoder emitting machine code into the code
cache.  Each step binds everything static about its op at compile time:
operand accessors, pre-summed cycle costs, the exit's
:class:`~repro.core.fragments.LinkStub` object, compiled branch
predicates, and the runtime's memory/system/counter/stats.  The
executor's hot loop then degenerates to ``i = steps[i](executor, cpu)``.

A step returns the index of the next step to run, or ``None`` when the
fragment is done — in which case the step has already resolved the exit
(``executor._next_fragment`` holds the linked/IBL-hit successor, or a
:class:`~repro.core.execute.CacheExit` was raised back to the
dispatcher).

Runs of consecutive straight-line ``OP_EXEC`` ops are *fused* into a
single step that executes the whole run in one call (charging cycles
and instructions exactly as the per-op engine would, including on a
mid-run fault or program exit).  Fusion never spans an intra-fragment
branch target, so ``OP_LOCAL_BR`` indices stay addressable.

Only the CPU is passed per call: fragments may be shared between
threads (the thread-shared cache ablation), so per-thread state cannot
be bound at compile time.  Link stubs are bound as objects and their
``linked_to`` fields read at exit time, preserving the link/unlink and
fragment-replacement semantics unchanged.

Compiled steps produce **bit-identical** cycles, stats, events and
output to the tuple-dispatch engine; the determinism regression tests
assert this end to end.
"""

from repro.core.emit import (
    CLEAN_CALL_COST,
    OP_CALL_EXIT,
    OP_CALL_INLINE,
    OP_CLEAN_CALL,
    OP_COND_EXIT,
    OP_EXEC,
    OP_IND_CHECK,
    OP_IND_EXIT,
    OP_JMP_EXIT,
    OP_LOCAL_BR,
)
from repro.machine.cpu import compile_condition
from repro.machine.errors import MachineFault
from repro.machine.exec_ops import compile_noncti, compile_read, read_operand
from repro.machine.system import pop_signal_frame
from repro.observe.events import (
    EV_CLEAN_CALL,
    EV_DISPATCH_CHECK_HIT,
    EV_INLINE_CHECK_HIT,
)

_MASK32 = 0xFFFFFFFF


def _compile_target_fetch(operand, mem):
    """Compile the indirect-branch target fetch: fn(cpu) -> target."""
    if operand == "ret":
        read_u32 = mem.read_u32

        def pop_ret(cpu):
            regs = cpu.regs
            target = read_u32(regs[4])
            regs[4] = (regs[4] + 4) & _MASK32
            return target

        return pop_ret
    if operand == "iret":
        return lambda cpu: pop_signal_frame(cpu, mem)
    fetch = compile_read(operand, mem)
    if fetch is None:
        return lambda cpu: read_operand(cpu, mem, operand)
    return fetch


# Op kinds the chain compiler may replace with stitched variants.
EXIT_KINDS = (
    OP_COND_EXIT,
    OP_JMP_EXIT,
    OP_CALL_EXIT,
    OP_IND_EXIT,
    OP_IND_CHECK,
)


def plan_fragment(code):
    """Plan the op-index → step-index mapping, fusing OP_EXEC runs.

    Returns ``(plans, step_of, table_len)``: ``plans`` is a list of
    ``("run", [op indices])`` / ``("op", op index)`` entries, one per
    step; ``step_of`` maps op indices (and the one-past-the-end index)
    to step indices; ``table_len`` counts the trailing fell-through
    sentinel step.  Shared by :func:`compile_steps` and the chain
    compiler (which must know a member's table length before any of
    its stitched steps are built).
    """
    # Intra-fragment branch targets must begin a step of their own.
    branch_targets = set()
    for op in code:
        if op[0] == OP_LOCAL_BR:
            branch_targets.add(op[2])

    plans = []
    step_of = {}
    n_ops = len(code)
    i = 0
    while i < n_ops:
        if code[i][0] == OP_EXEC:
            run = [i]
            j = i + 1
            while (
                j < n_ops
                and code[j][0] == OP_EXEC
                and j not in branch_targets
            ):
                run.append(j)
                j += 1
            step_of[i] = len(plans)
            plans.append(("run", run))
            i = j
        else:
            step_of[i] = len(plans)
            plans.append(("op", i))
            i += 1
    sentinel_index = len(plans)
    step_of[n_ops] = sentinel_index
    return plans, step_of, sentinel_index + 1


def compile_fragment(fragment, runtime):
    """Compile ``fragment.code`` into step closures; caches the result
    on ``fragment.compiled`` and returns it."""
    compiled = tuple(compile_steps(fragment, runtime))
    fragment.compiled = compiled
    return compiled


def compile_steps(fragment, runtime, base=0, exit_override=None):
    """Compile ``fragment.code`` into a list of step closures.

    ``base`` offsets every produced step index — the chain compiler
    (:mod:`repro.core.chains`) concatenates several fragments' step
    lists into one flat super-table, so intra-fragment transfers and
    fall-throughs must address their member's slice of it.

    ``exit_override(op_index, op, nxt)`` may return a replacement step
    for any exit-kind op (``EXIT_KINDS``); returning ``None`` keeps the
    generic step.  ``nxt`` is the (base-offset) fall-through step
    index.  The generic steps are the single source of truth for exit
    semantics; overrides only exist so chains can stitch linked exits
    into direct step-index transfers.
    """
    code = fragment.code
    exits = fragment.exits
    mem = runtime.memory
    system = runtime.system
    counter = runtime.counter
    stats = runtime.stats
    taken_penalty = runtime.cost.taken_branch_penalty
    write_u32 = mem.write_u32
    tag = fragment.tag

    plans, step_of, _table_len = plan_fragment(code)
    sentinel_index = len(plans)

    def next_step(op_index):
        return step_of.get(op_index, sentinel_index) + base

    steps = []
    for plan_kind, payload in plans:
        if plan_kind == "run":
            nxt = next_step(payload[-1] + 1)
            pairs = tuple(
                (code[k][3], compile_noncti(code[k][1], code[k][2], mem, system))
                for k in payload
            )
            if len(pairs) == 1:
                c, fn = pairs[0]

                def exec_step(ex, cpu, _c=c, _fn=fn, _nxt=nxt):
                    counter.cycles += _c
                    ex.instructions += 1
                    _fn(cpu)
                    return _nxt

                steps.append(exec_step)
            else:

                def fused_step(ex, cpu, _pairs=pairs, _nxt=nxt):
                    cycles = 0
                    done = 0
                    try:
                        for c, fn in _pairs:
                            cycles += c
                            done += 1
                            fn(cpu)
                    finally:
                        # Flush even when an instruction faults or exits
                        # the program: totals match the per-op engine at
                        # every observable point.
                        counter.cycles += cycles
                        ex.instructions += done
                    return _nxt

                steps.append(fused_step)
            continue

        op_index = payload
        op = code[op_index]
        kind = op[0]
        nxt = next_step(op_index + 1)

        if exit_override is not None and kind in EXIT_KINDS:
            custom = exit_override(op_index, op, nxt)
            if custom is not None:
                steps.append(custom)
                continue

        if kind == OP_COND_EXIT:
            cond = compile_condition(op[1])
            stub = exits[op[2]]
            c = op[3]

            def cond_exit_step(
                ex, cpu, _cond=cond, _stub=stub, _c=c, _nxt=nxt
            ):
                ex.instructions += 1
                if _cond(cpu.eflags):
                    counter.cycles += _c + taken_penalty
                    ex._next_fragment = ex._direct_exit(_stub, cpu, mem, system)
                    return None
                counter.cycles += _c
                return _nxt

            steps.append(cond_exit_step)

        elif kind == OP_JMP_EXIT:
            stub = exits[op[1]]
            c = op[2]

            def jmp_exit_step(ex, cpu, _stub=stub, _c=c):
                ex.instructions += 1
                counter.cycles += _c + taken_penalty
                ex._next_fragment = ex._direct_exit(_stub, cpu, mem, system)
                return None

            steps.append(jmp_exit_step)

        elif kind == OP_CALL_EXIT:
            stub = exits[op[1]]
            ret_addr = op[2]
            c = op[3]

            def call_exit_step(ex, cpu, _stub=stub, _ra=ret_addr, _c=c):
                ex.instructions += 1
                counter.cycles += _c + taken_penalty
                regs = cpu.regs
                regs[4] = (regs[4] - 4) & _MASK32
                write_u32(regs[4], _ra)
                ex._next_fragment = ex._direct_exit(_stub, cpu, mem, system)
                return None

            steps.append(call_exit_step)

        elif kind == OP_CALL_INLINE:
            ret_addr = op[1]
            c = op[2]

            def call_inline_step(ex, cpu, _ra=ret_addr, _c=c, _nxt=nxt):
                # Inlined call in a trace: push and fall through (no
                # taken penalty — superior trace layout).
                ex.instructions += 1
                counter.cycles += _c
                regs = cpu.regs
                regs[4] = (regs[4] - 4) & _MASK32
                write_u32(regs[4], _ra)
                return _nxt

            steps.append(call_inline_step)

        elif kind == OP_IND_EXIT:
            _k, exit_idx, operand, is_call, ret_addr, profiler, checker, c = op
            stub = exits[exit_idx]
            fetch = _compile_target_fetch(operand, mem)

            def ind_exit_step(
                ex,
                cpu,
                _fetch=fetch,
                _stub=stub,
                _is_call=is_call,
                _ra=ret_addr,
                _profiler=profiler,
                _checker=checker,
                _c=c,
                _tag=tag,
            ):
                ex.instructions += 1
                target = _fetch(cpu)
                if _checker is not None:
                    counter.cycles += CLEAN_CALL_COST
                    stats.clean_calls += 1
                    observer = ex.runtime.observer
                    if observer is not None:
                        observer.emit(
                            EV_CLEAN_CALL, _tag, role="checker", target=target
                        )
                    guard = ex.runtime.guard
                    if guard is None:
                        _checker(ex.runtime.current_thread, target)
                    else:
                        guard.call(
                            _checker,
                            (ex.runtime.current_thread, target),
                            tag=_tag,
                            role="checker",
                        )
                if _is_call:
                    regs = cpu.regs
                    regs[4] = (regs[4] - 4) & _MASK32
                    write_u32(regs[4], _ra)
                counter.cycles += _c + taken_penalty
                if _profiler is not None:
                    counter.cycles += CLEAN_CALL_COST
                    stats.clean_calls += 1
                    observer = ex.runtime.observer
                    if observer is not None:
                        observer.emit(
                            EV_CLEAN_CALL, _tag, role="profiler", target=target
                        )
                    guard = ex.runtime.guard
                    if guard is None:
                        _profiler(ex.runtime.current_thread, target)
                    else:
                        guard.call(
                            _profiler,
                            (ex.runtime.current_thread, target),
                            tag=_tag,
                            role="profiler",
                        )
                ex._next_fragment = ex._indirect_exit(
                    _stub, target, cpu, mem, system
                )
                return None

            steps.append(ind_exit_step)

        elif kind == OP_IND_CHECK:
            (
                _k,
                ibl_idx,
                operand,
                expected,
                dispatch,
                is_call,
                ret_addr,
                profiler,
                checker,
                c,
                check_cost,
            ) = op
            ibl_stub = exits[ibl_idx]
            dispatch_stubs = tuple(
                (d_tag, exits[d_idx]) for d_tag, d_idx in dispatch
            )
            fetch = _compile_target_fetch(operand, mem)

            def ind_check_step(
                ex,
                cpu,
                _fetch=fetch,
                _expected=expected,
                _dispatch=dispatch_stubs,
                _ibl_stub=ibl_stub,
                _is_call=is_call,
                _ra=ret_addr,
                _profiler=profiler,
                _checker=checker,
                _c=c,
                _check_cost=check_cost,
                _nxt=nxt,
                _tag=tag,
            ):
                ex.instructions += 1
                target = _fetch(cpu)
                if _checker is not None:
                    counter.cycles += CLEAN_CALL_COST
                    stats.clean_calls += 1
                    observer = ex.runtime.observer
                    if observer is not None:
                        observer.emit(
                            EV_CLEAN_CALL, _tag, role="checker", target=target
                        )
                    guard = ex.runtime.guard
                    if guard is None:
                        _checker(ex.runtime.current_thread, target)
                    else:
                        guard.call(
                            _checker,
                            (ex.runtime.current_thread, target),
                            tag=_tag,
                            role="checker",
                        )
                if _is_call:
                    regs = cpu.regs
                    regs[4] = (regs[4] - 4) & _MASK32
                    write_u32(regs[4], _ra)
                counter.cycles += _c
                if target == _expected:
                    stats.inline_check_hits += 1
                    observer = ex.runtime.observer
                    if observer is not None:
                        observer.emit(EV_INLINE_CHECK_HIT, _tag, target=target)
                    return _nxt
                matched = None
                for d_tag, d_stub in _dispatch:
                    counter.cycles += _check_cost
                    if target == d_tag:
                        matched = d_stub
                        break
                if matched is not None:
                    stats.dispatch_check_hits += 1
                    observer = ex.runtime.observer
                    if observer is not None:
                        observer.emit(EV_DISPATCH_CHECK_HIT, _tag, target=target)
                    counter.cycles += taken_penalty
                    ex._next_fragment = ex._direct_exit(
                        matched, cpu, mem, system
                    )
                    return None
                if _profiler is not None:
                    counter.cycles += CLEAN_CALL_COST
                    stats.clean_calls += 1
                    observer = ex.runtime.observer
                    if observer is not None:
                        observer.emit(
                            EV_CLEAN_CALL, _tag, role="profiler", target=target
                        )
                    guard = ex.runtime.guard
                    if guard is None:
                        _profiler(ex.runtime.current_thread, target)
                    else:
                        guard.call(
                            _profiler,
                            (ex.runtime.current_thread, target),
                            tag=_tag,
                            role="profiler",
                        )
                counter.cycles += taken_penalty
                ex._next_fragment = ex._indirect_exit(
                    _ibl_stub, target, cpu, mem, system
                )
                return None

            steps.append(ind_check_step)

        elif kind == OP_LOCAL_BR:
            _k, jcc, target_index, c = op
            target_step = next_step(target_index)
            if jcc is None:

                def local_jmp_step(ex, cpu, _t=target_step, _c=c):
                    ex.instructions += 1
                    counter.cycles += _c + taken_penalty
                    return _t

                steps.append(local_jmp_step)
            else:
                cond = compile_condition(jcc)

                def local_br_step(
                    ex, cpu, _cond=cond, _t=target_step, _c=c, _nxt=nxt
                ):
                    ex.instructions += 1
                    if _cond(cpu.eflags):
                        counter.cycles += _c + taken_penalty
                        return _t
                    counter.cycles += _c
                    return _nxt

                steps.append(local_br_step)

        elif kind == OP_CLEAN_CALL:
            fn = op[1]
            c = op[2]

            def clean_call_step(ex, cpu, _fn=fn, _c=c, _nxt=nxt, _tag=tag):
                counter.cycles += _c
                stats.clean_calls += 1
                observer = ex.runtime.observer
                if observer is not None:
                    observer.emit(EV_CLEAN_CALL, _tag, role="call")
                guard = ex.runtime.guard
                if guard is None:
                    _fn(ex.runtime.current_thread)
                else:
                    guard.call(
                        _fn,
                        (ex.runtime.current_thread,),
                        tag=_tag,
                        role="clean_call",
                    )
                return _nxt

            steps.append(clean_call_step)

        else:
            raise MachineFault("unknown fragment op kind %r" % (kind,))

    if runtime.options.precise_interrupts and fragment.translation is not None:
        # Wrap the application-consistent steps with the interrupt poll
        # (repro.core.translate) — after any exit_override so chains'
        # stitched steps are wrapped uniformly with the generic ones.
        from repro.core.translate import wrap_poll_steps

        wrap_poll_steps(fragment, runtime, plans, steps)

    def fell_through_step(ex, cpu, _tag=tag):
        # Only reachable when a fragment has no terminating exit —
        # fragments are built so this cannot happen.
        raise MachineFault(
            "fragment 0x%x fell through without an exit" % _tag
        )

    steps.append(fell_through_step)
    return steps
