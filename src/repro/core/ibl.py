"""Indirect branch lookup (IBL) table.

The in-cache hashtable that translates an application target address to
its code-cache fragment.  The paper calls this lookup "the single
greatest source of overhead in DynamoRIO"; its cycle cost is the
``ibl_lookup`` parameter of the cost model, charged by the executor on
every lookup.

Trace heads are deliberately *not* present: entries reaching a trace
head must come back to the dispatcher so the head's execution counter
advances (the same reason trace heads stay unlinked).
"""

from repro.observe.events import EV_IBL_HIT, EV_IBL_MISS


class IndirectBranchTable:
    """tag → Fragment map with hit/miss accounting hooks."""

    def __init__(self):
        self._table = {}

    def lookup(self, tag):
        return self._table.get(tag)

    def lookup_counted(self, tag, stats, observer=None):
        """The executor's accounted lookup: bumps the hit/miss counters
        and, when tracing is enabled, emits the matching drtrace event.
        Returns the fragment or ``None``."""
        fragment = self._table.get(tag)
        if fragment is not None:
            stats.ibl_hits += 1
            if observer is not None:
                observer.emit(EV_IBL_HIT, tag, fragment_kind=fragment.kind)
            return fragment
        stats.ibl_misses += 1
        if observer is not None:
            observer.emit(EV_IBL_MISS, tag)
        return None

    def insert(self, fragment):
        self._table[fragment.tag] = fragment

    def remove(self, fragment):
        existing = self._table.get(fragment.tag)
        if existing is fragment:
            del self._table[fragment.tag]

    def remove_tag(self, tag):
        self._table.pop(tag, None)

    def clear(self):
        self._table.clear()

    def __len__(self):
        return len(self._table)

    def __contains__(self, tag):
        return tag in self._table
