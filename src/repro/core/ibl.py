"""Indirect branch lookup (IBL) table.

The in-cache hashtable that translates an application target address to
its code-cache fragment.  The paper calls this lookup "the single
greatest source of overhead in DynamoRIO"; its cycle cost is the
``ibl_lookup`` parameter of the cost model, charged by the executor on
every lookup.

The hot path is ``table.get`` — a single dict probe.  Hit/miss
accounting (stats counters and drtrace events) lives with the callers
(:meth:`repro.core.execute.Executor._indirect_exit` and the chain
compiler's in-step fast path), so the lookup itself carries no
stats/observer plumbing.

Trace heads are deliberately *not* present: entries reaching a trace
head must come back to the dispatcher so the head's execution counter
advances (the same reason trace heads stay unlinked).
"""


class IndirectBranchTable:
    """tag → Fragment map; ``table`` is the raw probe surface."""

    def __init__(self):
        self.table = {}

    def lookup(self, tag):
        return self.table.get(tag)

    def insert(self, fragment):
        self.table[fragment.tag] = fragment

    def remove(self, fragment):
        existing = self.table.get(fragment.tag)
        if existing is fragment:
            del self.table[fragment.tag]

    def remove_tag(self, tag):
        self.table.pop(tag, None)

    def clear(self):
        self.table.clear()

    def __len__(self):
        return len(self.table)

    def __contains__(self, tag):
        return tag in self.table
