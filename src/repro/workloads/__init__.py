"""The SPEC2000-shaped workload suite.

The paper evaluates on SPEC CPU2000 (excluding the Fortran-90
benchmarks).  Real SPEC binaries cannot run on RIO-32, so each benchmark
here is a MiniC kernel *named after* and *shaped like* its SPEC
namesake: same domain, same code artifacts (loopiness, call density,
indirect-branch richness, redundant-load density, code reuse), scaled to
simulator-friendly sizes.  See DESIGN.md for the substitution argument.
"""

from repro.workloads.spec import (
    all_benchmarks,
    benchmark,
    fp_benchmarks,
    int_benchmarks,
    load_benchmark,
)

__all__ = [
    "all_benchmarks",
    "benchmark",
    "fp_benchmarks",
    "int_benchmarks",
    "load_benchmark",
]
