"""mgrid: multigrid Poisson solver.

Relaxation with a dense 9-point stencil plus restriction/prolongation
between two grid levels.  The paper's best RLR case (-40%): the stencil
reloads the same neighbors across consecutive statements, and the
multi-level structure keeps several hot loops live at once.
"""

NAME = "mgrid"
SUITE = "fp"
DESCRIPTION = "two-level multigrid: 9-point relaxation + transfer operators"


def source(scale):
    return """
float fine[700];
float coarse[200];
float rhs[700];
int seed;

int rng() {
    seed = seed * 1103515245 + 12345;
    return (seed >> 16) & 32767;
}

int relax(int w, int h) {
    int i; int j; int c;
    float center; float ring; float corners;
    for (i = 1; i < h - 1; i++) {
        for (j = 1; j < w - 1; j++) {
            c = i * w + j;
            center = fine[c] * 4;
            ring = fine[c - 1] + fine[c + 1] + fine[c - w] + fine[c + w];
            corners = fine[c - w - 1] + fine[c - w + 1] + fine[c + w - 1] + fine[c + w + 1];
            fine[c] = (center + ring * 2 + corners + rhs[c]) / 16;
        }
    }
    return 0;
}

int restrict_grid(int w, int h, int cw) {
    int i; int j; int c; int f;
    for (i = 1; i < h / 2 - 1; i++) {
        for (j = 1; j < w / 2 - 1; j++) {
            c = i * cw + j;
            f = (i * 2) * w + (j * 2);
            coarse[c] = (fine[f] * 4 + fine[f - 1] + fine[f + 1]
                         + fine[f - w] + fine[f + w]) / 8;
        }
    }
    return 0;
}

int prolong(int w, int h, int cw) {
    int i; int j; int c; int f;
    for (i = 1; i < h / 2 - 1; i++) {
        for (j = 1; j < w / 2 - 1; j++) {
            c = i * cw + j;
            f = (i * 2) * w + (j * 2);
            fine[f] = fine[f] + coarse[c] / 2;
            fine[f + 1] = fine[f + 1] + coarse[c] / 4;
            fine[f + w] = fine[f + w] + coarse[c] / 4;
        }
    }
    return 0;
}

int main() {
    int i; int cycle;
    float checksum;
    int w; int h; int cw;
    seed = 3003;
    w = 26; h = 26; cw = 13;
    for (i = 0; i < w * h; i++) {
        fine[i] = (rng() %% 100) - 50;
        rhs[i] = (rng() %% 40) - 20;
    }
    for (cycle = 0; cycle < %(cycles)d; cycle++) {
        relax(w, h);
        relax(w, h);
        restrict_grid(w, h, cw);
        prolong(w, h, cw);
        relax(w, h);
    }
    checksum = 0;
    for (i = 0; i < w * h; i++) { checksum = checksum + fine[i]; }
    print(checksum);
    return 0;
}
""" % {"cycles": 4 * scale}
