"""One module per SPEC2000-shaped benchmark kernel.

Each module exports ``NAME``, ``SUITE`` ("int"/"fp"), ``DESCRIPTION``,
``source(scale)`` returning MiniC text, and optionally ``RUNS`` for the
multiple-short-runs benchmarks (gcc, perlbmk).
"""
