"""crafty: chess bitboard kernel.

Bitboard move generation and evaluation: shifts, masks, popcounts —
crafty's signature 64-bit (here 2x32-bit) bit manipulation.  The
Table 1 "crafty" column.  Carries: long dependent ALU chains, loop-heavy
popcount, moderate branching.
"""

NAME = "crafty"
SUITE = "int"
DESCRIPTION = "bitboard move generation: shifts, masks, popcounts"


def source(scale):
    return """
int board_lo[32];
int board_hi[32];
int score_table[64];
int seed;

int rng() {
    seed = seed * 1103515245 + 12345;
    return (seed >> 16) & 32767;
}

int popcount(int x) {
    int n;
    n = 0;
    while (x != 0) {
        n = n + (x & 1);
        x = x >> 1;
    }
    return n;
}

int knight_moves(int lo, int hi) {
    int m;
    m = (lo << 2) ^ (hi >> 2);
    m = m | ((lo >> 6) & (hi << 6));
    m = m ^ ((lo << 10) | (hi >> 10));
    return m;
}

int evaluate(int idx) {
    int lo; int hi; int moves; int s;
    lo = board_lo[idx];
    hi = board_hi[idx];
    moves = knight_moves(lo, hi);
    s = popcount(moves & 0x55555555) * 3;
    s = s + popcount(moves & 0x33333333) * 2;
    s = s + popcount(lo & hi);
    s = s + score_table[moves & 63];
    return s;
}

int search(int depth, int idx) {
    int best; int move; int s;
    if (depth == 0) { return evaluate(idx); }
    best = 0 - 100000;
    for (move = 0; move < 4; move++) {
        board_lo[idx] = board_lo[idx] ^ (1 << ((move * 7 + depth) & 31));
        s = 0 - search(depth - 1, (idx + move + 1) & 31);
        board_lo[idx] = board_lo[idx] ^ (1 << ((move * 7 + depth) & 31));
        if (s > best) { best = s; }
    }
    return best;
}

int main() {
    int i; int total; int game;
    seed = 2718;
    for (i = 0; i < 32; i++) {
        board_lo[i] = rng() * rng();
        board_hi[i] = rng() * rng();
    }
    for (i = 0; i < 64; i++) { score_table[i] = (rng() %% 21) - 10; }
    total = 0;
    for (game = 0; game < %(games)d; game++) {
        total = total + search(3, game & 31);
        board_hi[game & 31] = board_hi[game & 31] + game;
    }
    print(total);
    return 0;
}
""" % {"games": 5 * scale}
