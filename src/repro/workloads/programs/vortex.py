"""vortex: object-oriented database.

Insert/lookup/delete over a hashed record store with small per-record
methods — vortex's many-small-calls profile.  Carries: dense call/return
traffic from varied call sites (the Section 4.4 motivation: return
inlining misses) and hash-bucket chasing.
"""

NAME = "vortex"
SUITE = "int"
DESCRIPTION = "hashed object store: insert/lookup/delete, many calls"


def source(scale):
    return """
int rec_key[512];
int rec_val[512];
int rec_next[512];
int buckets[64];
int free_head;
int population;
int seed;

int rng() {
    seed = seed * 1103515245 + 12345;
    return (seed >> 16) & 32767;
}

int hash_key(int k) {
    return ((k * 2654435761) >> 8) & 63;
}

int alloc_rec() {
    int r;
    r = free_head;
    if (r >= 0) { free_head = rec_next[r]; }
    return r;
}

int free_rec(int r) {
    rec_next[r] = free_head;
    free_head = r;
    return 0;
}

int insert(int key, int val) {
    int h; int r;
    r = alloc_rec();
    if (r < 0) { return 0 - 1; }
    h = hash_key(key);
    rec_key[r] = key;
    rec_val[r] = val;
    rec_next[r] = buckets[h];
    buckets[h] = r;
    population++;
    return r;
}

int find(int key) {
    int r;
    r = buckets[hash_key(key)];
    while (r >= 0) {
        if (rec_key[r] == key) { return rec_val[r]; }
        r = rec_next[r];
    }
    return 0 - 1;
}

int remove(int key) {
    int h; int r; int prev;
    h = hash_key(key);
    r = buckets[h];
    prev = 0 - 1;
    while (r >= 0) {
        if (rec_key[r] == key) {
            if (prev < 0) { buckets[h] = rec_next[r]; }
            else { rec_next[prev] = rec_next[r]; }
            free_rec(r);
            population = population - 1;
            return 1;
        }
        prev = r;
        r = rec_next[r];
    }
    return 0;
}

int main() {
    int i; int op; int key; int total;
    seed = 271828;
    for (i = 0; i < 512; i++) { rec_next[i] = i - 1; }
    free_head = 511;
    for (i = 0; i < 64; i++) { buckets[i] = 0 - 1; }
    population = 0;
    total = 0;
    for (op = 0; op < %(ops)d; op++) {
        key = rng() %% 400;
        if ((op & 3) == 0 && population > 100) {
            total = total + remove(key);
        } else if ((op & 3) == 1) {
            insert(key, op);
        } else {
            total = total + (find(key) & 255);
        }
    }
    print(total);
    print(population);
    return 0;
}
""" % {"ops": 2000 * scale}
