"""twolf: standard-cell place & route.

Net half-perimeter wirelength evaluation with cell swap moves on a
row-based layout — like TimberWolf's annealer but with a different cost
kernel than vpr (per-net bounding boxes rather than per-cell spans).
"""

NAME = "twolf"
SUITE = "int"
DESCRIPTION = "row-based annealing with per-net bounding-box wirelength"


def source(scale):
    return """
int cell_row[128];
int cell_col[128];
int net_first[40];
int pin_cell[320];
int pin_next[320];
int seed;

int rng() {
    seed = seed * 1103515245 + 12345;
    return (seed >> 16) & 32767;
}

int net_cost(int n) {
    int p; int c; int minr; int maxr; int minc; int maxc;
    minr = 1000; maxr = 0 - 1000; minc = 1000; maxc = 0 - 1000;
    p = net_first[n];
    while (p >= 0) {
        c = pin_cell[p];
        if (cell_row[c] < minr) { minr = cell_row[c]; }
        if (cell_row[c] > maxr) { maxr = cell_row[c]; }
        if (cell_col[c] < minc) { minc = cell_col[c]; }
        if (cell_col[c] > maxc) { maxc = cell_col[c]; }
        p = pin_next[p];
    }
    return (maxr - minr) + (maxc - minc);
}

int total_cost() {
    int n; int sum;
    sum = 0;
    for (n = 0; n < 40; n++) { sum = sum + net_cost(n); }
    return sum;
}

int main() {
    int i; int n; int moves; int a; int b; int t; int before; int after;
    int accepted; int threshold;
    seed = 60496;
    for (i = 0; i < 128; i++) {
        cell_row[i] = rng() %% 8;
        cell_col[i] = rng() %% 16;
    }
    for (n = 0; n < 40; n++) { net_first[n] = 0 - 1; }
    for (i = 0; i < 320; i++) {
        n = rng() %% 40;
        pin_cell[i] = rng() %% 128;
        pin_next[i] = net_first[n];
        net_first[n] = i;
    }
    accepted = 0;
    threshold = 24;
    for (moves = 0; moves < %(moves)d; moves++) {
        a = rng() %% 128;
        b = rng() %% 128;
        before = total_cost();
        t = cell_row[a]; cell_row[a] = cell_row[b]; cell_row[b] = t;
        t = cell_col[a]; cell_col[a] = cell_col[b]; cell_col[b] = t;
        after = total_cost();
        if (after <= before + threshold) { accepted++; }
        else {
            t = cell_row[a]; cell_row[a] = cell_row[b]; cell_row[b] = t;
            t = cell_col[a]; cell_col[a] = cell_col[b]; cell_col[b] = t;
        }
        if ((moves & 15) == 15 && threshold > 2) { threshold = threshold - 1; }
    }
    print(accepted);
    print(total_cost());
    return 0;
}
""" % {"moves": 10 * scale}
