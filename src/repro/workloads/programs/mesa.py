"""mesa: 3D graphics library.

A vertex-transform pipeline: 4x4 matrix times vertex positions, a
perspective-ish scale, and a viewport clip test, with a per-vertex
function call — mesa's geometry stage.  Carries: FP call-heavy loops
mixed with branchy clipping.
"""

NAME = "mesa"
SUITE = "fp"
DESCRIPTION = "vertex pipeline: matrix transform + clip + viewport"


def source(scale):
    return """
float mat[16];
float vx[128]; float vy[128]; float vz[128];
float ox[128]; float oy[128]; float oz[128];
int clipped;
int seed;

int rng() {
    seed = seed * 1103515245 + 12345;
    return (seed >> 16) & 32767;
}

int transform_vertex(int i) {
    float x; float y; float z; float w;
    x = vx[i]; y = vy[i]; z = vz[i];
    ox[i] = (mat[0] * x + mat[1] * y + mat[2] * z + mat[3]) / 16;
    oy[i] = (mat[4] * x + mat[5] * y + mat[6] * z + mat[7]) / 16;
    oz[i] = (mat[8] * x + mat[9] * y + mat[10] * z + mat[11]) / 16;
    w = (mat[12] * x + mat[13] * y + mat[14] * z + mat[15]) / 16;
    if (w < 1) { w = 1; }
    ox[i] = ox[i] / w;
    oy[i] = oy[i] / w;
    return 0;
}

int clip_vertex(int i) {
    if (ox[i] > 320) { return 1; }
    if (ox[i] < 0 - 320) { return 1; }
    if (oy[i] > 240) { return 1; }
    if (oy[i] < 0 - 240) { return 1; }
    return 0;
}

int draw_frame(int nverts) {
    int i; int visible;
    visible = 0;
    for (i = 0; i < nverts; i++) {
        transform_vertex(i);
        if (clip_vertex(i) == 0) { visible++; }
    }
    return visible;
}

int main() {
    int i; int frame; int total;
    seed = 5005;
    for (i = 0; i < 16; i++) { mat[i] = (rng() %% 9) - 4; }
    mat[0] = 16; mat[5] = 16; mat[10] = 16; mat[15] = 16;
    for (i = 0; i < 128; i++) {
        vx[i] = (rng() %% 400) - 200;
        vy[i] = (rng() %% 400) - 200;
        vz[i] = (rng() %% 100) + 1;
    }
    total = 0;
    for (frame = 0; frame < %(frames)d; frame++) {
        mat[3] = frame %% 32;
        mat[7] = (frame * 3) %% 32;
        total = total + draw_frame(128);
    }
    print(total);
    return 0;
}
""" % {"frames": 12 * scale}
