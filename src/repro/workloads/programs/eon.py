"""eon: probabilistic ray tracing kernel (SPEC's only C++ benchmark).

Fixed-point ray-sphere intersection with per-ray function calls and
vector math.  Carries: call-heavy numeric code mixing int control flow
with float arithmetic.
"""

NAME = "eon"
SUITE = "int"
DESCRIPTION = "fixed-point ray/sphere intersections, call-heavy"


def source(scale):
    return """
float cx[24]; float cy[24]; float cz[24]; float rr[24];
int seed;

int rng() {
    seed = seed * 1103515245 + 12345;
    return (seed >> 16) & 32767;
}

float dot3(float ax, float ay, float az, float bx, float by, float bz) {
    return ax * bx + ay * by + az * bz;
}

int hits_sphere(int s, float ox, float oy, float oz,
                float dx, float dy, float dz) {
    float mx; float my; float mz; float b; float c;
    mx = cx[s] - ox;
    my = cy[s] - oy;
    mz = cz[s] - oz;
    b = dot3(mx, my, mz, dx, dy, dz);
    c = dot3(mx, my, mz, mx, my, mz) - rr[s];
    if (b < 0) { return 0; }
    if (b * b >= c) { return 1; }
    return 0;
}

int trace_ray(float ox, float oy, float oz, float dx, float dy, float dz) {
    int s; int hits;
    hits = 0;
    for (s = 0; s < 24; s++) {
        hits = hits + hits_sphere(s, ox, oy, oz, dx, dy, dz);
    }
    return hits;
}

int main() {
    int s; int ray; int total;
    float ox; float oy; float oz; float dx; float dy; float dz;
    seed = 31337;
    for (s = 0; s < 24; s++) {
        cx[s] = (rng() %% 200) - 100;
        cy[s] = (rng() %% 200) - 100;
        cz[s] = (rng() %% 200) - 100;
        rr[s] = (rng() %% 40) + 10;
    }
    total = 0;
    for (ray = 0; ray < %(rays)d; ray++) {
        ox = 0; oy = 0; oz = 0;
        dx = (rng() %% 19) - 9;
        dy = (rng() %% 19) - 9;
        dz = (rng() %% 19) - 9;
        total = total + trace_ray(ox, oy, oz, dx, dy, dz);
    }
    print(total);
    return 0;
}
""" % {"rays": 90 * scale}
