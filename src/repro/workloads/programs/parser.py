"""parser: link-grammar-flavored tokenizer + state machine.

A character-class scanner driven by a dense ``switch`` (compiled to a
jump table — an indirect jump per character) plus a small dictionary
lookup.  Carries: indirect-branch-rich inner loop with a skewed target
distribution — prime material for the Section 4.3 dispatch client.
"""

NAME = "parser"
SUITE = "int"
DESCRIPTION = "state-machine tokenizer with switch jump tables"


def source(scale):
    return """
int text[2048];
int dict_hash[64];
int words; int numbers; int puncts; int errors;
int seed;

int rng() {
    seed = seed * 1103515245 + 12345;
    return (seed >> 16) & 32767;
}

int classify(int c) {
    if (c < 26) { return 0; }      /* letter */
    if (c < 36) { return 1; }      /* digit */
    if (c < 40) { return 2; }      /* space */
    if (c < 44) { return 3; }      /* punct */
    return 4;                      /* junk */
}

int lookup(int h) {
    return dict_hash[h & 63];
}

int scan(int len) {
    int i; int state; int c; int kind; int h; int found;
    state = 0;
    h = 0;
    found = 0;
    for (i = 0; i < len; i++) {
        c = text[i];
        kind = classify(c);
        switch (state * 5 + kind) {
            case 0: state = 1; h = c; break;          /* start letter */
            case 1: state = 2; h = c; break;          /* start digit */
            case 2: break;                            /* skip space */
            case 3: puncts++; break;
            case 4: errors++; break;
            case 5: h = h * 31 + c; break;            /* in word */
            case 6: state = 3; break;                 /* word+digit: id */
            case 7: words++; found = found + lookup(h); state = 0; break;
            case 8: words++; puncts++; state = 0; break;
            case 9: errors++; state = 0; break;
            case 10: state = 3; break;                /* digit then letter */
            case 11: h = h * 10 + c; break;           /* in number */
            case 12: numbers++; state = 0; break;
            case 13: numbers++; puncts++; state = 0; break;
            case 14: errors++; state = 0; break;
            case 15: h = h + c; break;                /* in identifier */
            case 16: h = h + c; break;
            case 17: words++; state = 0; break;
            case 18: words++; puncts++; state = 0; break;
            default: errors++; state = 0;
        }
    }
    return found;
}

int main() {
    int i; int round; int total; int len;
    seed = 5150;
    len = 1600;
    for (i = 0; i < 64; i++) { dict_hash[i] = rng() & 15; }
    for (i = 0; i < len; i++) {
        text[i] = rng() %% 46;
    }
    total = 0;
    words = 0; numbers = 0; puncts = 0; errors = 0;
    for (round = 0; round < %(rounds)d; round++) {
        total = total + scan(len);
        text[round %% len] = rng() %% 46;
    }
    print(total);
    print(words + numbers * 2 + puncts * 3 + errors * 5);
    return 0;
}
""" % {"rounds": 4 * scale}
