"""equake: seismic wave simulation.

Sparse matrix-vector products in CSR form (row-pointer + column-index
arrays) — equake's unstructured-mesh kernel.  Carries: indirect indexed
loads (gather) inside FP accumulation loops.
"""

NAME = "equake"
SUITE = "fp"
DESCRIPTION = "CSR sparse matrix-vector products (gather-heavy)"


def source(scale):
    return """
int rowptr[81];
int colidx[640];
float vals[640];
float x[80];
float y[80];
int seed;

int rng() {
    seed = seed * 1103515245 + 12345;
    return (seed >> 16) & 32767;
}

int spmv(int nrows) {
    int r; int k; int lo; int hi;
    float sum;
    for (r = 0; r < nrows; r++) {
        sum = 0;
        lo = rowptr[r];
        hi = rowptr[r + 1];
        for (k = lo; k < hi; k++) {
            sum = sum + vals[k] * x[colidx[k]];
        }
        y[r] = sum;
    }
    return 0;
}

int main() {
    int i; int r; int step; int nnz; int nrows;
    float checksum;
    seed = 7007;
    nrows = 80;
    nnz = 0;
    for (r = 0; r < nrows; r++) {
        rowptr[r] = nnz;
        for (i = 0; i < 8; i++) {
            colidx[nnz] = rng() %% nrows;
            vals[nnz] = (rng() %% 11) - 5;
            nnz++;
        }
    }
    rowptr[nrows] = nnz;
    for (i = 0; i < nrows; i++) { x[i] = (rng() %% 50) - 25; }
    for (step = 0; step < %(steps)d; step++) {
        spmv(nrows);
        for (i = 0; i < nrows; i++) {
            x[i] = x[i] + y[i] / 16;
            if (x[i] > 100000) { x[i] = x[i] / 2; }
            if (x[i] < 0 - 100000) { x[i] = x[i] / 2; }
        }
    }
    checksum = 0;
    for (i = 0; i < nrows; i++) { checksum = checksum + x[i]; }
    print(checksum);
    return 0;
}
""" % {"steps": 26 * scale}
