"""mcf: minimum-cost network flow.

Bellman-Ford-style arc relaxation over an array-encoded graph — the
pointer-chasing, memory-bound access pattern of the real mcf.  Carries:
indirection through index arrays, unpredictable branches, few calls.
"""

NAME = "mcf"
SUITE = "int"
DESCRIPTION = "network-simplex-flavored arc relaxation over index arrays"


def source(scale):
    return """
int tail[900];
int head[900];
int cost[900];
int dist[160];
int seed;

int rng() {
    seed = seed * 1103515245 + 12345;
    return (seed >> 16) & 32767;
}

int relax_all(int narcs) {
    int a; int changed; int t; int h; int nd;
    changed = 0;
    for (a = 0; a < narcs; a++) {
        t = tail[a];
        h = head[a];
        nd = dist[t] + cost[a];
        if (nd < dist[h]) {
            dist[h] = nd;
            changed++;
        }
    }
    return changed;
}

int main() {
    int i; int round; int total; int narcs; int nodes;
    seed = 99;
    nodes = 160;
    narcs = 900;
    for (i = 0; i < narcs; i++) {
        tail[i] = rng() %% nodes;
        head[i] = rng() %% nodes;
        cost[i] = (rng() %% 50) + 1;
    }
    total = 0;
    for (round = 0; round < %(rounds)d; round++) {
        for (i = 1; i < nodes; i++) { dist[i] = 1000000; }
        dist[0] = 0;
        i = 0;
        while (i < 24) {
            if (relax_all(narcs) == 0) { break; }
            i++;
        }
        for (i = 0; i < nodes; i++) {
            if (dist[i] < 1000000) { total = total + dist[i]; }
        }
        cost[round %% narcs] = (cost[round %% narcs] + 3) %% 50 + 1;
    }
    print(total);
    return 0;
}
""" % {"rounds": 3 * scale}
