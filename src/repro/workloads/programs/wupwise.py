"""wupwise: lattice QCD (complex matrix arithmetic).

Fixed-point complex matrix-vector products (the BLAS-like zgemv core
of wupwise).  Carries: mul/add dense FP loops with paired re/im arrays.
"""

NAME = "wupwise"
SUITE = "fp"
DESCRIPTION = "complex matrix-vector products (fixed-point)"


def source(scale):
    return """
float mre[144]; float mim[144];
float vre[12]; float vim[12];
float rre[12]; float rim[12];
int seed;

int rng() {
    seed = seed * 1103515245 + 12345;
    return (seed >> 16) & 32767;
}

int zgemv() {
    int i; int j;
    float ar; float ai; float sumr; float sumi;
    for (i = 0; i < 12; i++) {
        sumr = 0; sumi = 0;
        for (j = 0; j < 12; j++) {
            ar = mre[i * 12 + j];
            ai = mim[i * 12 + j];
            sumr = sumr + ar * vre[j] - ai * vim[j];
            sumi = sumi + ar * vim[j] + ai * vre[j];
        }
        rre[i] = sumr;
        rim[i] = sumi;
    }
    return 0;
}

int main() {
    int i; int sweep;
    float checksum;
    seed = 1001;
    for (i = 0; i < 144; i++) {
        mre[i] = (rng() %% 17) - 8;
        mim[i] = (rng() %% 17) - 8;
    }
    for (i = 0; i < 12; i++) { vre[i] = i + 1; vim[i] = 11 - i; }
    for (sweep = 0; sweep < %(sweeps)d; sweep++) {
        zgemv();
        for (i = 0; i < 12; i++) {
            vre[i] = rre[i] - vre[i];
            vim[i] = rim[i] - vim[i];
            if (vre[i] > 100000) { vre[i] = vre[i] / 2; }
            if (vre[i] < 0 - 100000) { vre[i] = vre[i] / 2; }
            if (vim[i] > 100000) { vim[i] = vim[i] / 2; }
            if (vim[i] < 0 - 100000) { vim[i] = vim[i] / 2; }
        }
    }
    checksum = 0;
    for (i = 0; i < 12; i++) { checksum = checksum + vre[i] + vim[i]; }
    print(checksum);
    return 0;
}
""" % {"sweeps": 70 * scale}
