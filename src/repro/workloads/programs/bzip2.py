"""bzip2: block-sorting compression.

Counting sort over a byte block, move-to-front encoding, and run-length
counting — bzip2's pipeline in miniature.  Carries: byte loads/stores,
table-walking inner loops, data-dependent short loops.
"""

NAME = "bzip2"
SUITE = "int"
DESCRIPTION = "counting sort + move-to-front + RLE over byte blocks"


def source(scale):
    return """
int block[2048];
int sorted_block[2048];
int counts[256];
int mtf_table[256];
int seed;

int rng() {
    seed = seed * 1103515245 + 12345;
    return (seed >> 16) & 32767;
}

int counting_sort(int len) {
    int i; int c; int pos;
    for (i = 0; i < 256; i++) { counts[i] = 0; }
    for (i = 0; i < len; i++) { counts[block[i]]++; }
    pos = 0;
    for (c = 0; c < 256; c++) {
        for (i = 0; i < counts[c]; i++) {
            sorted_block[pos] = c;
            pos++;
        }
    }
    return pos;
}

int mtf_encode(int len) {
    int i; int c; int j; int idx; int total;
    for (i = 0; i < 256; i++) { mtf_table[i] = i; }
    total = 0;
    for (i = 0; i < len; i++) {
        c = block[i];
        idx = 0;
        while (mtf_table[idx] != c) { idx++; }
        for (j = idx; j > 0; j--) { mtf_table[j] = mtf_table[j - 1]; }
        mtf_table[0] = c;
        total = total + idx;
    }
    return total;
}

int rle_count(int len) {
    int i; int runs; int current; int runlen;
    runs = 0;
    current = 0 - 1;
    runlen = 0;
    for (i = 0; i < len; i++) {
        if (sorted_block[i] == current) { runlen++; }
        else {
            if (runlen > 3) { runs++; }
            current = sorted_block[i];
            runlen = 1;
        }
    }
    return runs;
}

int main() {
    int round; int i; int total; int len;
    seed = 8192;
    len = 600;
    total = 0;
    for (round = 0; round < %(rounds)d; round++) {
        for (i = 0; i < len; i++) { block[i] = rng() & 63; }
        total = total + counting_sort(len);
        total = total + (mtf_encode(len) & 1023);
        total = total + rle_count(len);
    }
    print(total);
    return 0;
}
""" % {"rounds": 1 * scale}
