"""gcc: a compiler-shaped workload.

Many distinct phases (lex, parse, fold, dead-code elimination, register
assignment, emission), each touching its own code, run only a couple of
times over a small input.  Carries the paper's gcc property: *multiple
short runs with little code re-use*, so building blocks and traces is
hard to amortize and optimization clients can lose.
"""

NAME = "gcc"
SUITE = "int"
DESCRIPTION = "multi-phase toy compiler pipeline; little code reuse"


def source(scale):
    return """
int src[512];
int toks[512];
int vals[512];
int ntoks;
int tree_op[256];
int tree_l[256];
int tree_r[256];
int tree_val[256];
int nnodes;
int regs_used;
int emitted;
int seed;

int rng() {
    seed = seed * 1103515245 + 12345;
    return (seed >> 16) & 32767;
}

int lex(int len) {
    int i; int c; int n;
    n = 0;
    for (i = 0; i < len; i++) {
        c = src[i];
        if (c < 10) { toks[n] = 1; vals[n] = c; n++; }
        else if (c < 14) { toks[n] = 2; vals[n] = c - 10; n++; }
        else if (c < 15) { toks[n] = 3; vals[n] = 0; n++; }
    }
    ntoks = n;
    return n;
}

int newnode(int op, int l, int r, int v) {
    tree_op[nnodes] = op;
    tree_l[nnodes] = l;
    tree_r[nnodes] = r;
    tree_val[nnodes] = v;
    nnodes++;
    return nnodes - 1;
}

int parse_pairs() {
    int i; int left; int right;
    nnodes = 0;
    left = newnode(0, 0 - 1, 0 - 1, vals[0]);
    i = 1;
    while (i + 1 < ntoks && nnodes < 250) {
        right = newnode(0, 0 - 1, 0 - 1, vals[i + 1]);
        left = newnode(toks[i] + 9, left, right, 0);
        i = i + 2;
    }
    return left;
}

int fold(int node) {
    int op; int l; int r;
    op = tree_op[node];
    if (op == 0) { return tree_val[node]; }
    l = fold(tree_l[node]);
    r = fold(tree_r[node]);
    switch (op - 9) {
        case 1: return l + r;
        case 2: return l - r;
        case 3: return l ^ r;
        case 4: return l & r;
        default: return l;
    }
}

int dce(int root) {
    int i; int live; int changed;
    live = 0;
    for (i = 0; i < nnodes; i++) { tree_val[i] = tree_val[i] & 65535; }
    for (i = nnodes - 1; i >= 0; i--) {
        if (tree_op[i] != 0 || i == root) { live++; }
    }
    return live;
}

int assign_regs() {
    int i; int next;
    next = 0;
    for (i = 0; i < nnodes; i++) {
        if (tree_op[i] != 0) {
            next = next + 1;
            if (next > 6) { next = 1; }
        }
    }
    regs_used = next;
    return next;
}

int emit(int root) {
    int i; int count;
    count = 0;
    for (i = 0; i < nnodes; i++) {
        if (tree_op[i] == 0) { count = count + 1; }
        else { count = count + 2; }
    }
    emitted = emitted + count;
    return count;
}

int compile_unit(int len) {
    int root; int result;
    lex(len);
    root = parse_pairs();
    result = fold(root);
    result = result + dce(root);
    result = result + assign_regs();
    result = result + emit(root);
    return result;
}

int main() {
    int unit; int total; int i; int len;
    seed = 1234;
    total = 0;
    emitted = 0;
    for (unit = 0; unit < %(units)d; unit++) {
        len = 60 + (unit %% 5) * 40;
        for (i = 0; i < len; i++) { src[i] = rng() %% 16; }
        total = total + compile_unit(len);
    }
    print(total);
    print(emitted);
    return 0;
}
""" % {"units": 4 * scale}

# SPEC invokes gcc several times on different inputs; each run starts
# with cold caches (the paper: "multiple short runs with little code
# re-use").
RUNS = 4
