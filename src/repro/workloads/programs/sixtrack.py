"""sixtrack: particle accelerator tracking.

Repeated application of a symplectic transfer map (rotation + kick) to
a bunch of particles — sixtrack's tracking loop.  Carries: long
straight-line FP bodies applied in a tight loop (big basic blocks).
"""

NAME = "sixtrack"
SUITE = "fp"
DESCRIPTION = "symplectic map iteration over a particle bunch"


def source(scale):
    return """
float x[40]; float xp[40];
float y[40]; float yp[40];
int seed;

int rng() {
    seed = seed * 1103515245 + 12345;
    return (seed >> 16) & 32767;
}

int track_turn(int n) {
    int i;
    float nx; float nxp; float ny; float nyp; float kick;
    for (i = 0; i < n; i++) {
        nx = (x[i] * 62 - xp[i] * 8) / 64;
        nxp = (x[i] * 8 + xp[i] * 62) / 64;
        ny = (y[i] * 60 - yp[i] * 14) / 64;
        nyp = (y[i] * 14 + yp[i] * 62) / 64;
        kick = (nx * nx - ny * ny) / 4096;
        nxp = nxp + kick;
        nyp = nyp - (nx * ny * 2) / 4096;
        x[i] = nx; xp[i] = nxp;
        y[i] = ny; yp[i] = nyp;
        if (x[i] > 100000) { x[i] = 0; xp[i] = 0; }
        if (y[i] > 100000) { y[i] = 0; yp[i] = 0; }
        if (x[i] < 0 - 100000) { x[i] = 0; xp[i] = 0; }
        if (y[i] < 0 - 100000) { y[i] = 0; yp[i] = 0; }
    }
    return 0;
}

int main() {
    int i; int turn; int n;
    float checksum;
    seed = 9009;
    n = 40;
    for (i = 0; i < n; i++) {
        x[i] = (rng() %% 512) - 256;
        xp[i] = (rng() %% 64) - 32;
        y[i] = (rng() %% 512) - 256;
        yp[i] = (rng() %% 64) - 32;
    }
    for (turn = 0; turn < %(turns)d; turn++) {
        track_turn(n);
    }
    checksum = 0;
    for (i = 0; i < n; i++) { checksum = checksum + x[i] + y[i]; }
    print(checksum);
    return 0;
}
""" % {"turns": 45 * scale}
