"""gap: computational group theory.

Permutation composition, inversion, and orbit computation over small
arrays — the array-shuffling heart of GAP.  Carries: indexed loads
whose address depends on a just-loaded value (serial dependence).
"""

NAME = "gap"
SUITE = "int"
DESCRIPTION = "permutation algebra: compose, invert, orbits"


def source(scale):
    return """
int perm_a[64];
int perm_b[64];
int perm_c[64];
int inv[64];
int orbit_seen[64];
int seed;

int rng() {
    seed = seed * 1103515245 + 12345;
    return (seed >> 16) & 32767;
}

int compose(int n) {
    int i;
    for (i = 0; i < n; i++) {
        perm_c[i] = perm_a[perm_b[i]];
    }
    return perm_c[0];
}

int invert(int n) {
    int i;
    for (i = 0; i < n; i++) {
        inv[perm_c[i]] = i;
    }
    return inv[0];
}

int orbit_size(int start, int n) {
    int count; int x;
    for (x = 0; x < n; x++) { orbit_seen[x] = 0; }
    count = 0;
    x = start;
    while (orbit_seen[x] == 0) {
        orbit_seen[x] = 1;
        count++;
        x = perm_c[x];
    }
    return count;
}

int shuffle(int n) {
    int i; int j; int t;
    for (i = n - 1; i > 0; i--) {
        j = rng() %% (i + 1);
        t = perm_a[i]; perm_a[i] = perm_a[j]; perm_a[j] = t;
    }
    return perm_a[0];
}

int main() {
    int i; int round; int total; int n;
    seed = 4096;
    n = 64;
    for (i = 0; i < n; i++) { perm_a[i] = i; perm_b[i] = (i * 7 + 3) %% n; }
    total = 0;
    for (round = 0; round < %(rounds)d; round++) {
        shuffle(n);
        compose(n);
        invert(n);
        for (i = 0; i < n; i = i + 8) {
            total = total + orbit_size(i, n);
        }
        for (i = 0; i < n; i++) { perm_b[i] = inv[i]; }
    }
    print(total);
    return 0;
}
""" % {"rounds": 24 * scale}
