"""ammp: molecular dynamics.

Pairwise force computation with a cutoff over particle arrays — ammp's
non-bonded interaction loop.  Carries: O(n²) FP inner loop with an
early-out branch (the cutoff) and position updates.
"""

NAME = "ammp"
SUITE = "fp"
DESCRIPTION = "pairwise forces with cutoff over particle arrays"


def source(scale):
    return """
float px[48]; float py[48];
float fx[48]; float fy[48];
int seed;

int rng() {
    seed = seed * 1103515245 + 12345;
    return (seed >> 16) & 32767;
}

int forces(int n, int cutoff2) {
    int i; int j;
    float dx; float dy; float d2; float f;
    for (i = 0; i < n; i++) { fx[i] = 0; fy[i] = 0; }
    for (i = 0; i < n; i++) {
        for (j = i + 1; j < n; j++) {
            dx = px[j] - px[i];
            dy = py[j] - py[i];
            d2 = dx * dx + dy * dy;
            if (d2 > cutoff2) { continue; }
            if (d2 < 4) { d2 = 4; }
            f = 4096 / d2;
            fx[i] = fx[i] - dx * f / 64;
            fy[i] = fy[i] - dy * f / 64;
            fx[j] = fx[j] + dx * f / 64;
            fy[j] = fy[j] + dy * f / 64;
        }
    }
    return 0;
}

int integrate(int n) {
    int i;
    for (i = 0; i < n; i++) {
        px[i] = px[i] + fx[i] / 256;
        py[i] = py[i] + fy[i] / 256;
        if (px[i] > 1000) { px[i] = px[i] - 2000; }
        if (px[i] < 0 - 1000) { px[i] = px[i] + 2000; }
        if (py[i] > 1000) { py[i] = py[i] - 2000; }
        if (py[i] < 0 - 1000) { py[i] = py[i] + 2000; }
    }
    return 0;
}

int main() {
    int i; int step; int n;
    float checksum;
    seed = 8008;
    n = 48;
    for (i = 0; i < n; i++) {
        px[i] = (rng() %% 2000) - 1000;
        py[i] = (rng() %% 2000) - 1000;
    }
    for (step = 0; step < %(steps)d; step++) {
        forces(n, 250000);
        integrate(n);
    }
    checksum = 0;
    for (i = 0; i < n; i++) { checksum = checksum + px[i] + py[i]; }
    print(checksum);
    return 0;
}
""" % {"steps": 10 * scale}
