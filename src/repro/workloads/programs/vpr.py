"""vpr: FPGA placement by simulated annealing.

Swap-move cost evaluation over a grid, like vpr's placer: random cell
pairs, incremental wirelength deltas, accept/reject.  Carries: tight
loops with compares, address arithmetic, and moderate call density —
the Table 1 "vpr" column.
"""

NAME = "vpr"
SUITE = "int"
DESCRIPTION = "simulated-annealing placement: swap moves over a grid"


def source(scale):
    return """
int cellx[144];
int celly[144];
int netof[144];
int seed;

int rng() {
    seed = seed * 1103515245 + 12345;
    return (seed >> 16) & 32767;
}

int absdiff(int a, int b) {
    if (a > b) { return a - b; }
    return b - a;
}

int cell_cost(int c) {
    int n; int other; int cost; int k;
    n = netof[c];
    cost = 0;
    for (k = 0; k < 144; k++) {
        if (netof[k] == n) {
            cost = cost + absdiff(cellx[c], cellx[k]);
            cost = cost + absdiff(celly[c], celly[k]);
        }
    }
    return cost;
}

int main() {
    int i; int moves; int a; int b; int before; int after; int t;
    int accepted; int temperature;
    seed = 7;
    for (i = 0; i < 144; i++) {
        cellx[i] = rng() %% 12;
        celly[i] = rng() %% 12;
        netof[i] = rng() %% 24;
    }
    accepted = 0;
    temperature = 64;
    for (moves = 0; moves < %(moves)d; moves++) {
        a = rng() %% 144;
        b = rng() %% 144;
        before = cell_cost(a) + cell_cost(b);
        t = cellx[a]; cellx[a] = cellx[b]; cellx[b] = t;
        t = celly[a]; celly[a] = celly[b]; celly[b] = t;
        after = cell_cost(a) + cell_cost(b);
        if (after <= before + temperature) {
            accepted++;
        } else {
            t = cellx[a]; cellx[a] = cellx[b]; cellx[b] = t;
            t = celly[a]; celly[a] = celly[b]; celly[b] = t;
        }
        if ((moves & 31) == 31 && temperature > 1) {
            temperature = temperature - 1;
        }
    }
    print(accepted);
    print(cell_cost(0));
    return 0;
}
""" % {"moves": 36 * scale}
