"""perlbmk: bytecode interpreter running several short scripts.

A dispatch-table interpreter (indirect call per opcode) executes a
handful of *different* generated scripts, each only once — the paper's
perlbmk property: short phases with little code re-use, where
optimization time is never amortized.
"""

NAME = "perlbmk"
SUITE = "int"
DESCRIPTION = "bytecode interpreter over many distinct short scripts"


def source(scale):
    return """
int prog_op[512];
int prog_arg[512];
int stack[64];
int sp;
int mem[32];
int handlers[8];
int seed;

int rng() {
    seed = seed * 1103515245 + 12345;
    return (seed >> 16) & 32767;
}

int op_push(int a) { stack[sp] = a; sp++; return 0; }
int op_add(int a) { sp--; stack[sp - 1] = stack[sp - 1] + stack[sp]; return 0; }
int op_xor(int a) { sp--; stack[sp - 1] = stack[sp - 1] ^ stack[sp]; return 0; }
int op_store(int a) { sp--; mem[a & 31] = stack[sp]; return 0; }
int op_load(int a) { stack[sp] = mem[a & 31]; sp++; return 0; }
int op_dup(int a) { stack[sp] = stack[sp - 1]; sp++; return 0; }
int op_shift(int a) { stack[sp - 1] = stack[sp - 1] << (a & 7); return 0; }
int op_neg(int a) { stack[sp - 1] = 0 - stack[sp - 1]; return 0; }

int run_script(int len) {
    int pc; int f;
    sp = 1;
    stack[0] = 0;
    for (pc = 0; pc < len; pc++) {
        if (sp < 1) { sp = 1; }
        if (sp > 60) { sp = 60; }
        f = handlers[prog_op[pc]];
        f(prog_arg[pc]);
    }
    return stack[sp - 1];
}

int main() {
    int script; int i; int total; int len;
    seed = 777;
    handlers[0] = &op_push;
    handlers[1] = &op_add;
    handlers[2] = &op_xor;
    handlers[3] = &op_store;
    handlers[4] = &op_load;
    handlers[5] = &op_dup;
    handlers[6] = &op_shift;
    handlers[7] = &op_neg;
    total = 0;
    for (script = 0; script < %(scripts)d; script++) {
        len = 120 + (script %% 7) * 40;
        for (i = 0; i < len; i++) {
            prog_op[i] = rng() & 7;
            prog_arg[i] = rng() & 255;
        }
        total = total + run_script(len);
        total = total & 0xFFFFFF;
    }
    print(total);
    return 0;
}
""" % {"scripts": 14 * scale}

# Like gcc: SPEC runs perl repeatedly on short scripts; every run pays
# cold-cache costs again.
RUNS = 4
