"""art: adaptive resonance theory neural network.

F1→F2 weighted sums, winner-take-all search, and weight update — the
image-recognition loop of art.  Carries: dense multiply-accumulate over
weight matrices with a data-dependent winner scan.
"""

NAME = "art"
SUITE = "fp"
DESCRIPTION = "neural network: weighted sums + winner-take-all + update"


def source(scale):
    return """
float weights[640];
float input_vec[64];
float activation[10];
int winner_count[10];
int seed;

int rng() {
    seed = seed * 1103515245 + 12345;
    return (seed >> 16) & 32767;
}

int forward() {
    int f2; int i;
    float sum;
    for (f2 = 0; f2 < 10; f2++) {
        sum = 0;
        for (i = 0; i < 64; i++) {
            sum = sum + weights[f2 * 64 + i] * input_vec[i];
        }
        activation[f2] = sum / 64;
    }
    return 0;
}

int find_winner() {
    int f2; int best;
    best = 0;
    for (f2 = 1; f2 < 10; f2++) {
        if (activation[f2] > activation[best]) { best = f2; }
    }
    return best;
}

int learn(int winner) {
    int i;
    for (i = 0; i < 64; i++) {
        weights[winner * 64 + i] =
            (weights[winner * 64 + i] * 3 + input_vec[i]) / 4;
    }
    return 0;
}

int main() {
    int i; int sample; int w; int total;
    seed = 6006;
    for (i = 0; i < 640; i++) { weights[i] = rng() %% 32; }
    total = 0;
    for (sample = 0; sample < %(samples)d; sample++) {
        for (i = 0; i < 64; i++) {
            input_vec[i] = ((rng() + sample * 37) %% 64);
        }
        forward();
        w = find_winner();
        winner_count[w]++;
        learn(w);
        total = total + w;
    }
    print(total);
    print(winner_count[0] + winner_count[9] * 10);
    return 0;
}
""" % {"samples": 20 * scale}
