"""apsi: mesoscale weather model.

Several distinct physics passes per timestep (advection, vertical
diffusion, a pollutant source, and a column reduction) over a 2D field
— apsi's multi-phase structure.  Carries: several medium-hot loops
rather than one dominant kernel.
"""

NAME = "apsi"
SUITE = "fp"
DESCRIPTION = "weather model: advection + diffusion + sources per step"


def source(scale):
    return """
float conc[648];
float wind_u[648];
float tmp[648];
int seed;

int rng() {
    seed = seed * 1103515245 + 12345;
    return (seed >> 16) & 32767;
}

int advect(int w, int h) {
    int i; int j; int c;
    for (i = 1; i < h - 1; i++) {
        for (j = 1; j < w - 1; j++) {
            c = i * w + j;
            if (wind_u[c] > 0) {
                tmp[c] = conc[c] - wind_u[c] * (conc[c] - conc[c - 1]) / 64;
            } else {
                tmp[c] = conc[c] - wind_u[c] * (conc[c + 1] - conc[c]) / 64;
            }
        }
    }
    for (i = 1; i < h - 1; i++) {
        for (j = 1; j < w - 1; j++) {
            conc[i * w + j] = tmp[i * w + j];
        }
    }
    return 0;
}

int diffuse(int w, int h) {
    int i; int j; int c;
    for (i = 1; i < h - 1; i++) {
        for (j = 1; j < w - 1; j++) {
            c = i * w + j;
            conc[c] = conc[c] + (conc[c - w] + conc[c + w] - conc[c] * 2) / 16;
        }
    }
    return 0;
}

int emit_sources(int w, int h, int step) {
    int k; int c;
    for (k = 0; k < 6; k++) {
        c = ((k * 97 + step) %% (w * h - 2 * w)) + w;
        conc[c] = conc[c] + 500;
    }
    return 0;
}

float column_total(int w, int h, int j) {
    int i;
    float sum;
    sum = 0;
    for (i = 0; i < h; i++) { sum = sum + conc[i * w + j]; }
    return sum;
}

int main() {
    int i; int step;
    float checksum;
    int w; int h;
    seed = 1010;
    w = 27; h = 24;
    for (i = 0; i < w * h; i++) {
        conc[i] = rng() %% 100;
        wind_u[i] = (rng() %% 17) - 8;
    }
    checksum = 0;
    for (step = 0; step < %(steps)d; step++) {
        emit_sources(w, h, step);
        advect(w, h);
        diffuse(w, h);
        checksum = checksum + column_total(w, h, step %% w) / 64;
    }
    print(checksum);
    return 0;
}
""" % {"steps": 10 * scale}
