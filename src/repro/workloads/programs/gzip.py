"""gzip: LZ77-style compression kernel.

Byte-level scanning with a hash chain, like the real gzip deflate inner
loop.  Carries: tight byte loads (``movzx``), ``movb`` stores, short
match loops, and data-dependent branches.
"""

NAME = "gzip"
SUITE = "int"
DESCRIPTION = "LZ77 hash-chain compression over a pseudo-random buffer"


def source(scale):
    return """
int buf[4096];
int hashtab[256];
int out_len;
int seed;

int rng() {
    seed = seed * 1103515245 + 12345;
    return (seed >> 16) & 32767;
}

int hash3(int i) {
    int h;
    h = buf[i] * 31 + buf[i + 1];
    h = h * 31 + buf[i + 2];
    return h & 255;
}

int match_length(int a, int b, int limit) {
    int n;
    n = 0;
    while (n < limit) {
        if (buf[a + n] != buf[b + n]) { return n; }
        n++;
    }
    return n;
}

int compress(int len) {
    int i; int h; int cand; int m; int emitted;
    emitted = 0;
    for (i = 0; i < 256; i++) { hashtab[i] = 0 - 1; }
    i = 0;
    while (i < len - 3) {
        h = hash3(i);
        cand = hashtab[h];
        hashtab[h] = i;
        if (cand >= 0 && cand < i) {
            m = match_length(cand, i, 16);
            if (m >= 3) {
                emitted = emitted + 2;
                i = i + m;
                continue;
            }
        }
        emitted++;
        i++;
    }
    return emitted;
}

int main() {
    int round; int total; int i; int len;
    seed = 42;
    len = 1200;
    total = 0;
    for (i = 0; i < len; i++) {
        buf[i] = rng() & 63;
        if ((i & 7) < 3) { buf[i] = buf[i] & 3; }
    }
    for (round = 0; round < %(rounds)d; round++) {
        total = total + compress(len);
        buf[round & 1023] = round & 255;
    }
    print(total);
    return 0;
}
""" % {"rounds": 3 * scale}
