"""swim: shallow water equations on a 2D grid.

The classic u/v/p stencil sweeps.  Carries: neighboring-cell loads in
every statement — heavy *cross-statement* redundancy for the RLR
client, on a grid walked row-major.
"""

NAME = "swim"
SUITE = "fp"
DESCRIPTION = "shallow-water u/v/p stencil sweeps on a 2D grid"


def source(scale):
    return """
float u[600]; float v[600]; float p[600];
float unew[600]; float vnew[600]; float pnew[600];
int seed;

int rng() {
    seed = seed * 1103515245 + 12345;
    return (seed >> 16) & 32767;
}

int step(int w, int h) {
    int i; int j; int c;
    for (i = 1; i < h - 1; i++) {
        for (j = 1; j < w - 1; j++) {
            c = i * w + j;
            unew[c] = u[c] + (p[c - 1] - p[c + 1]) / 4 + (v[c] - u[c]) / 8;
            vnew[c] = v[c] + (p[c - w] - p[c + w]) / 4 + (u[c] - v[c]) / 8;
            pnew[c] = p[c] + (u[c - 1] - u[c + 1] + v[c - w] - v[c + w]) / 4;
        }
    }
    for (i = 1; i < h - 1; i++) {
        for (j = 1; j < w - 1; j++) {
            c = i * w + j;
            u[c] = unew[c];
            v[c] = vnew[c];
            p[c] = pnew[c];
        }
    }
    return 0;
}

int main() {
    int i; int t;
    float checksum;
    int w; int h;
    seed = 2002;
    w = 24; h = 25;
    for (i = 0; i < w * h; i++) {
        u[i] = (rng() %% 200) - 100;
        v[i] = (rng() %% 200) - 100;
        p[i] = (rng() %% 1000);
    }
    for (t = 0; t < %(steps)d; t++) {
        step(w, h);
    }
    checksum = 0;
    for (i = 0; i < w * h; i++) { checksum = checksum + p[i] + u[i] - v[i]; }
    print(checksum);
    return 0;
}
""" % {"steps": 6 * scale}
