"""applu: SSOR solver for Navier-Stokes.

Lower and upper triangular sweeps (forward then backward substitution)
over a 2D grid — applu's characteristic directional dependence.
Carries: loop-carried dependences and two differently-ordered sweeps.
"""

NAME = "applu"
SUITE = "fp"
DESCRIPTION = "SSOR: forward and backward triangular sweeps"


def source(scale):
    return """
float g[700];
float rsd[700];
int seed;

int rng() {
    seed = seed * 1103515245 + 12345;
    return (seed >> 16) & 32767;
}

int lower_sweep(int w, int h) {
    int i; int j; int c;
    for (i = 1; i < h - 1; i++) {
        for (j = 1; j < w - 1; j++) {
            c = i * w + j;
            g[c] = g[c] + (g[c - 1] + g[c - w] - g[c] * 2) / 4 + rsd[c] / 8;
        }
    }
    return 0;
}

int upper_sweep(int w, int h) {
    int i; int j; int c;
    for (i = h - 2; i > 0; i--) {
        for (j = w - 2; j > 0; j--) {
            c = i * w + j;
            g[c] = g[c] + (g[c + 1] + g[c + w] - g[c] * 2) / 4;
        }
    }
    return 0;
}

float residual(int w, int h) {
    int i; int j; int c;
    float r;
    r = 0;
    for (i = 1; i < h - 1; i++) {
        for (j = 1; j < w - 1; j++) {
            c = i * w + j;
            rsd[c] = g[c - 1] + g[c + 1] + g[c - w] + g[c + w] - g[c] * 4;
            r = r + rsd[c];
        }
    }
    return r;
}

int main() {
    int i; int iter;
    float checksum;
    int w; int h;
    seed = 4004;
    w = 26; h = 26;
    for (i = 0; i < w * h; i++) {
        g[i] = (rng() %% 120) - 60;
        rsd[i] = (rng() %% 30) - 15;
    }
    for (iter = 0; iter < %(iters)d; iter++) {
        lower_sweep(w, h);
        upper_sweep(w, h);
        residual(w, h);
    }
    checksum = 0;
    for (i = 0; i < w * h; i++) { checksum = checksum + g[i]; }
    print(checksum);
    return 0;
}
""" % {"iters": 6 * scale}
