"""Benchmark registry.

Each benchmark module under ``repro.workloads.programs`` exports::

    NAME         the SPEC2000 name ("mgrid", "crafty", …)
    SUITE        "int" or "fp"
    DESCRIPTION  one line: what the kernel does and which paper artifact
                 it carries
    def source(scale): -> MiniC text

``scale`` is a small integer work multiplier; the ``SCALES`` presets map
symbolic sizes to per-benchmark scales tuned so every benchmark executes
a comparable number of dynamic instructions.
"""

import importlib
from collections import namedtuple

from repro.minicc import compile_source

Benchmark = namedtuple(
    "Benchmark", ["name", "suite", "description", "source", "runs"]
)

_PROGRAM_MODULES = [
    # CINT2000
    "gzip",
    "vpr",
    "gcc",
    "mcf",
    "crafty",
    "parser",
    "eon",
    "perlbmk",
    "gap",
    "vortex",
    "bzip2",
    "twolf",
    # CFP2000 (Fortran-90 benchmarks excluded, as in the paper)
    "wupwise",
    "swim",
    "mgrid",
    "applu",
    "mesa",
    "art",
    "equake",
    "ammp",
    "sixtrack",
    "apsi",
]

SCALES = {"test": 1, "small": 3, "ref": 10}

_registry = None


def _load_registry():
    global _registry
    if _registry is None:
        _registry = {}
        for module_name in _PROGRAM_MODULES:
            module = importlib.import_module(
                "repro.workloads.programs.%s" % module_name
            )
            bench = Benchmark(
                module.NAME,
                module.SUITE,
                module.DESCRIPTION,
                module.source,
                getattr(module, "RUNS", 1),
            )
            _registry[bench.name] = bench
    return _registry


def all_benchmarks():
    """All benchmarks in suite order (INT first, then FP)."""
    registry = _load_registry()
    return [registry[name] for name in _PROGRAM_MODULES]


def int_benchmarks():
    return [b for b in all_benchmarks() if b.suite == "int"]


def fp_benchmarks():
    return [b for b in all_benchmarks() if b.suite == "fp"]


def benchmark(name):
    return _load_registry()[name]


_image_cache = {}


def load_benchmark(name, scale="test"):
    """Compile a benchmark to an Image (cached per name+scale)."""
    if isinstance(scale, str):
        scale = int(scale) if scale.isdigit() else SCALES[scale]
    key = (name, scale)
    if key not in _image_cache:
        bench = benchmark(name)
        _image_cache[key] = compile_source(bench.source(scale))
    return _image_cache[key]
