"""Inline (zero-clean-call) instruction counting.

The classic DBI optimization of the classic DBI tool: instead of a
clean call per block (60-cycle register save/restore), insert a single
``add dword [counter], block_size`` *inline* — legal only where eflags
are provably dead, which the linear-stream liveness analysis
(`repro.analysis`) finds with one forward scan.  Blocks with no
dead-flags point fall back to the clean call.

The counter lives in runtime-heap memory (``dr_global_alloc``), never
in application memory — transparency as in Section 3.2.
"""

from repro.analysis import find_dead_flags_point
from repro.api.client import Client
from repro.api.dr import (
    dr_get_profile,
    dr_global_alloc,
    dr_insert_clean_call,
    dr_insert_meta_instr,
    dr_printf,
)
from repro.core.bb_builder import block_instr_count
from repro.ir.create import INSTR_CREATE_add, OPND_CREATE_INT32, OPND_CREATE_MEM


class InlineInstructionCounter(Client):
    """Counts executed instructions with inline adds where possible."""

    def __init__(self):
        super().__init__()
        self.counter_addr = None
        self.inline_blocks = 0
        self.fallback_blocks = 0
        self._fallback_count = 0

    def init(self):
        self.counter_addr = dr_global_alloc(self, 4)

    def basic_block(self, context, tag, ilist):
        count = block_instr_count(ilist)
        # the flags scan needs per-instruction (Level 2+) nodes
        ilist.expand_bundles()
        point = find_dead_flags_point(ilist)
        if point is not None:
            bump = INSTR_CREATE_add(
                OPND_CREATE_MEM(disp=self.counter_addr),
                OPND_CREATE_INT32(count),
            )
            dr_insert_meta_instr(ilist, point, bump)
            self.inline_blocks += 1
        else:
            def bump_cb(_context, _n=count):
                self._fallback_count += _n

            dr_insert_clean_call(ilist, ilist.first(), bump_cb)
            self.fallback_blocks += 1

    @property
    def executed(self):
        """Total counted instructions (inline memory + fallback)."""
        memory = self.runtime.memory
        return memory.read_u32(self.counter_addr) + self._fallback_count

    def exit(self):
        dr_printf(
            self,
            "inline inscount: %d blocks inline, %d via clean call, %d executed",
            self.inline_blocks,
            self.fallback_blocks,
            self.executed,
        )
        # When the drtrace profiler ran, report where the cycles went.
        for row in dr_get_profile(self, top=3):
            dr_printf(
                self,
                "hot fragment: tag=0x%x kind=%s entries=%d cycles=%d (%.1f%%)",
                row["tag"],
                row["kind"],
                row["entries"],
                row["cycles"],
                row["share"] * 100.0,
            )
