"""inc→add strength reduction (paper Section 4.2, Figure 3).

On the Pentium 4, ``inc``/``dec`` stall on the partial eflags update
(they write every arithmetic flag *except* CF), so ``add 1``/``sub 1``
are faster — and the opposite holds on the Pentium 3.  The client is a
near-transliteration of the paper's Figure 3: enabled only when the
processor is a Pentium 4, it walks each trace, and for every inc/dec
performs the CF-liveness scan — ``add`` writes CF where ``inc`` does
not, so the substitution is legal only if CF is written again (by an
instruction that does not first read it) before any read, without
leaving the fragment.
"""

from repro.api.client import Client
from repro.api.dr import (
    FAMILY_PENTIUM_IV,
    dr_printf,
    instr_get_dst,
    instr_get_eflags,
    instr_get_next,
    instr_get_opcode,
    instr_get_prefixes,
    instr_set_prefixes,
    instrlist_first,
    instrlist_replace,
    proc_get_family,
)
from repro.ir.create import (
    INSTR_CREATE_add,
    INSTR_CREATE_sub,
    OPND_CREATE_INT8,
)
from repro.isa.eflags import EFLAGS_READ_CF, EFLAGS_WRITE_CF
from repro.isa.opcodes import Opcode


class StrengthReduction(Client):
    """The paper's inc2add client."""

    def __init__(self, optimize_blocks=False):
        super().__init__()
        self.enable = False
        self.optimize_blocks = optimize_blocks
        self.num_examined = 0
        self.num_converted = 0

    def init(self):
        self.enable = proc_get_family(self) == FAMILY_PENTIUM_IV

    def exit(self):
        if self.enable:
            dr_printf(
                self,
                "converted %d out of %d",
                self.num_converted,
                self.num_examined,
            )
        else:
            dr_printf(self, "kept original inc/dec")

    def basic_block(self, context, tag, ilist):
        if self.optimize_blocks and self.enable:
            ilist.decode_all()
            self._walk(context, ilist)

    def trace(self, context, tag, ilist):
        if not self.enable:
            return
        self._walk(context, ilist)

    def _walk(self, context, trace):
        instr = instrlist_first(trace)
        while instr is not None:
            next_instr = instr_get_next(instr)
            if not instr.is_label():
                opcode = instr_get_opcode(instr)
                if opcode in (Opcode.INC, Opcode.DEC):
                    self.num_examined += 1
                    if self._inc2add(context, instr, trace):
                        self.num_converted += 1
            instr = next_instr

    def _inc2add(self, context, instr, trace):
        """Figure 3's ``inc2add``: replace if CF is dead here."""
        opcode = instr_get_opcode(instr)
        ok_to_replace = False
        # add writes CF, inc does not — check that's acceptable.
        scan = instr
        while scan is not None:
            if not scan.is_label():
                eflags = instr_get_eflags(scan)
                if scan is not instr and eflags & EFLAGS_READ_CF:
                    return False
                if scan is not instr and eflags & EFLAGS_WRITE_CF:
                    # writes without first reading: safe to clobber
                    ok_to_replace = True
                    break
                # simplification from the paper: stop at the first exit
                if scan is not instr and scan.is_exit_cti:
                    return False
                if scan.is_cti():
                    return False
            scan = instr_get_next(scan)
        if not ok_to_replace:
            return False
        if opcode == Opcode.INC:
            new = INSTR_CREATE_add(instr_get_dst(instr, 0), OPND_CREATE_INT8(1))
        else:
            new = INSTR_CREATE_sub(instr_get_dst(instr, 0), OPND_CREATE_INT8(1))
        instr_set_prefixes(new, instr_get_prefixes(instr))
        instrlist_replace(trace, instr, new)
        return True
