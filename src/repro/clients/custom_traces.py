"""Custom call-inlining traces (paper Section 4.4).

Default traces focus on loops and often split a hot call from its
return, so the inlined return target keeps missing (each call site
returns somewhere else).  This client uses the custom-trace interface:

* every block that ends in a call is marked as a trace head
  (``dr_mark_trace_head``), so traces begin *at call sites* and inline
  the callee per call site — which "nearly guarantees that the inlined
  [return] target will match", since each trace's return continuation
  is its own call site's fall-through;
* ``end_trace`` ends a trace one basic block after a return — inlining
  the return together with its (now unique) return target;
* in the trace hook, an inlined return whose calling convention is
  assumed to hold is removed entirely: the pop becomes a flags-neutral
  ``lea esp, [esp+4]`` and the target check disappears.
"""

from repro.api.client import Client, CONTINUE_TRACE, END_TRACE
from repro.api.dr import dr_mark_trace_head, dr_printf
from repro.ir.create import INSTR_CREATE_lea, OPND_CREATE_MEM, OPND_CREATE_REG
from repro.isa.registers import Reg


class CustomTraces(Client):
    """Mark calls as trace heads; end traces after returns."""

    def __init__(self, max_trace_blocks=12, remove_returns=True):
        super().__init__()
        self.max_trace_blocks = max_trace_blocks
        self.remove_returns = remove_returns
        # tag -> True when that block ends in a return
        self.ends_in_ret = {}
        # per-trace build state: trace_tag -> (blocks added, saw a ret)
        self.building = {}
        self.returns_removed = 0
        self.heads_marked = 0

    # -------------------------------------------------------------- hooks

    def basic_block(self, context, tag, ilist):
        ends_ret = False
        ends_call = False
        for instr in ilist:
            if instr.is_bundle or instr.is_label() or instr.level < 2:
                continue
            if instr.is_cti():
                if instr.is_call():
                    ends_call = True
                if instr.is_ret():
                    ends_ret = True
        if ends_call:
            # Per-call-site traces: the call site itself heads a trace
            # so the inlined return target is this site's continuation.
            dr_mark_trace_head(context, tag)
            self.heads_marked += 1
        self.ends_in_ret[tag] = ends_ret

    def end_trace(self, context, trace_tag, next_tag):
        count, saw_ret, prev_tag = self.building.get(trace_tag, (1, False, trace_tag))
        if saw_ret:
            # one block was added after the return: end now
            self.building.pop(trace_tag, None)
            return END_TRACE
        if count >= self.max_trace_blocks:
            self.building.pop(trace_tag, None)
            return END_TRACE
        # Did the block about to be *left* (the previous one) end in ret?
        prev_ends_ret = self.ends_in_ret.get(prev_tag, False)
        self.building[trace_tag] = (count + 1, prev_ends_ret, next_tag)
        # Keep building through calls and returns (the default test would
        # stop at backward branches; we want call→body→ret→continuation).
        return CONTINUE_TRACE

    def trace(self, context, tag, ilist):
        self.building.pop(tag, None)
        if not self.remove_returns:
            return
        # A return may only be removed when its matching *call* was
        # inlined earlier in this same trace: then the pushed return
        # address is by construction the trace's recorded continuation
        # (given the calling convention).  A return at depth zero could
        # have been reached from any caller — its check must stay.
        depth = 0
        for instr in ilist:
            if instr.is_label() or instr.is_bundle or instr.level < 2:
                continue
            if (
                instr.is_call()
                and isinstance(instr.note, dict)
                and (instr.note.get("inline") or "inline_target" in instr.note)
            ):
                depth += 1
                continue
            if (
                instr.is_ret()
                and isinstance(instr.note, dict)
                and instr.note.get("inline_target") is not None
                and depth > 0
            ):
                depth -= 1
                # Assume the calling convention holds: the return goes to
                # the inlined continuation.  Pop the return address with a
                # flags-neutral lea and drop the check entirely.
                pop = INSTR_CREATE_lea(
                    OPND_CREATE_REG(Reg.ESP),
                    OPND_CREATE_MEM(base=Reg.ESP, disp=4),
                )
                ilist.replace(instr, pop)
                pop.is_exit_cti = False
                # Tag the replacement so drequiv knows a return was
                # deleted here: the checker re-synthesizes the indirect
                # observable (target = popped word) and flags the
                # continuation as assumed rather than proven.
                pop.note = {"ret_removed": instr.note.get("inline_target")}
                self.returns_removed += 1

    def fragment_deleted(self, context, tag):
        self.building.pop(tag, None)

    def exit(self):
        dr_printf(
            self,
            "custom traces: %d call heads marked, %d returns removed",
            self.heads_marked,
            self.returns_removed,
        )
