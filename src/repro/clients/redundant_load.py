"""Redundant load removal (paper Section 4.1).

A classical compiler optimization applied dynamically: IA-32's eight
registers force compilers to keep locals on the stack, so hot code is
full of loads from locations whose value is already in a register.  The
client walks each trace's linear instruction stream tracking which
register mirrors which memory location; a later load from a mirrored
location becomes a register move (or disappears when it targets the
same register).

Safety rules on the linear stream:

* a register write kills its own mapping and every mapping whose
  address uses it;
* a store kills the mappings its target *may alias*: two operands off
  the same base register with no index and disjoint displacement ranges
  provably do not alias (the stack-slot case that makes the analysis
  useful); anything else is conservatively assumed to alias;
* calls, clean calls, syscalls, and indirect branches kill everything;
* removing/rewriting a ``mov`` (or ``fld``) is flags-safe because RIO-32
  moves never touch eflags;
* exits need no special casing: off-trace paths resume at original
  application code.
"""

from repro.api.client import Client
from repro.ir.create import INSTR_CREATE_mov, OPND_CREATE_REG
from repro.isa.opcodes import Opcode
from repro.isa.operands import MemOperand, RegOperand


def _kills_everything(instr):
    if isinstance(instr.note, dict) and instr.note.get("clean_call"):
        return True
    opcode = instr.opcode
    return opcode in (Opcode.SYSCALL, Opcode.CALL, Opcode.CALL_IND, Opcode.RET)


class RedundantLoadRemoval(Client):
    """Removes trace-local redundant loads; counts its work."""

    def __init__(self, optimize_blocks=False):
        super().__init__()
        self.optimize_blocks = optimize_blocks
        self.loads_seen = 0
        self.loads_removed = 0
        self.loads_rewritten = 0

    # ------------------------------------------------------------ the pass

    def basic_block(self, context, tag, ilist):
        if self.optimize_blocks:
            ilist.decode_all()
            self._optimize(ilist)

    def trace(self, context, tag, ilist):
        self._optimize(ilist)

    def _optimize(self, ilist):
        # reg -> MemOperand currently mirrored by that register
        mirrors = {}

        def kill_reg(reg):
            mirrors.pop(reg, None)
            for r in list(mirrors):
                if mirrors[r].uses_reg(reg):
                    del mirrors[r]

        def kill_stores(store_op=None):
            """A store happened; drop every mirror it may alias."""
            for r in list(mirrors):
                if store_op is None or _may_alias(mirrors[r], store_op):
                    del mirrors[r]

        for instr in ilist:
            if instr.is_label():
                if isinstance(instr.note, dict) and instr.note.get("clean_call"):
                    mirrors.clear()
                continue
            if _kills_everything(instr):
                mirrors.clear()
                continue
            opcode = instr.opcode

            # Pure register<-memory loads are the candidates.
            if opcode in (Opcode.MOV, Opcode.FLD):
                dst = instr.dst(0)
                src = instr.src(0)
                if isinstance(dst, RegOperand) and isinstance(src, MemOperand):
                    self.loads_seen += 1
                    holder = self._find_mirror(mirrors, src)
                    if holder is not None:
                        if holder == dst.reg:
                            ilist.remove(instr)
                            self.loads_removed += 1
                        else:
                            new = INSTR_CREATE_mov(
                                OPND_CREATE_REG(dst.reg),
                                OPND_CREATE_REG(holder),
                            )
                            ilist.replace(instr, new)
                            self.loads_rewritten += 1
                            kill_reg(dst.reg)
                            if not src.uses_reg(dst.reg):
                                mirrors[dst.reg] = src
                        continue
                    kill_reg(dst.reg)
                    if not src.uses_reg(dst.reg):
                        mirrors[dst.reg] = src
                    continue
                if isinstance(dst, MemOperand) and isinstance(src, RegOperand):
                    # store: the stored register now mirrors the slot
                    kill_stores(dst)
                    if not dst.uses_reg(src.reg):
                        mirrors[src.reg] = dst
                    continue

            # Memory operands folded into ALU instructions (add eax,
            # [ebp-8]) are loads too: narrow them to register operands
            # when the location is mirrored.  Skip lea (address, not
            # load) and operands that are also written.
            if (
                mirrors
                and opcode not in (Opcode.LEA, Opcode.POP)
                and not instr.is_cti()
            ):
                dsts = instr.dsts
                for idx, op in enumerate(instr.srcs):
                    if not isinstance(op, MemOperand):
                        continue
                    if any(d == op for d in dsts):
                        continue
                    holder = self._find_mirror(mirrors, op)
                    if holder is not None:
                        self.loads_seen += 1
                        instr.set_src(idx, RegOperand(holder))
                        self.loads_rewritten += 1

            # General case: account writes.
            if instr.writes_memory():
                store_ops = [op for op in instr.dsts if isinstance(op, MemOperand)]
                for op in store_ops:
                    kill_stores(op)
            for op in instr.dsts:
                if isinstance(op, RegOperand):
                    kill_reg(op.reg)
            if instr.opcode == Opcode.XCHG:
                mirrors.clear()

    @staticmethod
    def _find_mirror(mirrors, memop):
        for reg, mem in mirrors.items():
            if mem == memop:
                return reg
        return None


def _may_alias(a, b):
    """Whether two memory operands may address overlapping bytes.

    Provably disjoint only for index-free operands off the *same* base
    register (or both absolute) with non-overlapping [disp, disp+size)
    ranges; everything else conservatively aliases.
    """
    if a.index is not None or b.index is not None:
        return True
    if a.base != b.base:
        return True
    return a.disp < b.disp + b.size and b.disp < a.disp + a.size

    # --------------------------------------------------------------- report

    def exit(self):
        from repro.api.dr import dr_printf

        dr_printf(
            self,
            "RLR: %d loads seen, %d removed, %d narrowed to register moves",
            self.loads_seen,
            self.loads_removed,
            self.loads_rewritten,
        )
