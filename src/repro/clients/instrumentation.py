"""Non-optimization clients (paper Sections 1 and 7).

The interface "is not restricted to optimization and can be used for
instrumentation, profiling, dynamic translation, etc.":

* :class:`NullClient` — observes every hook, changes nothing; measures
  the bare cost of running a client;
* :class:`InstructionCounter` — classic dynamic instruction counting
  via one clean call per basic block;
* :class:`OpcodeProfiler` — static-at-build-time opcode mix histogram,
  zero execution-time overhead.
"""

from collections import Counter

from repro.api.client import Client
from repro.api.dr import dr_insert_clean_call, dr_printf
from repro.core.bb_builder import block_instr_count


class NullClient(Client):
    """Sees everything, touches nothing."""

    def __init__(self):
        super().__init__()
        self.bb_count = 0
        self.trace_count = 0
        self.deleted_count = 0
        self.thread_inits = 0

    def thread_init(self, context):
        self.thread_inits += 1

    def basic_block(self, context, tag, ilist):
        self.bb_count += 1

    def trace(self, context, tag, ilist):
        self.trace_count += 1

    def fragment_deleted(self, context, tag):
        self.deleted_count += 1


class InstructionCounter(Client):
    """Counts dynamically executed application instructions.

    One clean call per basic block adds the block's size — the standard
    "inscount" tool on every DBI framework.
    """

    def __init__(self):
        super().__init__()
        self.executed = 0

    def basic_block(self, context, tag, ilist):
        count = block_instr_count(ilist)

        def bump(_context, _count=count):
            self.executed += _count

        dr_insert_clean_call(ilist, ilist.first(), bump)

    def exit(self):
        dr_printf(self, "executed %d instructions", self.executed)


class OpcodeProfiler(Client):
    """Histogram of opcodes entering the code cache (build-time only)."""

    def __init__(self):
        super().__init__()
        self.block_opcodes = Counter()
        self.trace_opcodes = Counter()

    def basic_block(self, context, tag, ilist):
        ilist.decode_all()
        for instr in ilist:
            if not instr.is_label():
                self.block_opcodes[instr.info.name] += 1

    def trace(self, context, tag, ilist):
        for instr in ilist:
            if not instr.is_label():
                self.trace_opcodes[instr.info.name] += 1

    def exit(self):
        top = ", ".join(
            "%s:%d" % (name, count)
            for name, count in self.block_opcodes.most_common(5)
        )
        dr_printf(self, "top block opcodes: %s", top)
