"""Program shepherding: control-flow policy enforcement.

The paper cites "secure execution via program shepherding" [23] as the
flagship non-optimization use of this interface; the shepherding system
was literally built as a DynamoRIO client.  This client reproduces its
core policies on RIO-32:

* **indirect call / indirect jump targets** must be *known function
  entries* — addresses the client has learned from the image's function
  symbols or from direct call sites it has seen at block-build time;
* **return targets** must be *return sites* — the instruction after
  some call the client has seen.

Both policies are enforced with checker routines on every indirect
transfer (``dr_set_ind_branch_checker``), before control moves — so a
corrupted function pointer or a smashed return address is stopped at
the branch, not after the payload runs.  Enforcement cost is real
(a clean call per indirect transfer), exactly the overhead profile the
shepherding paper reports.
"""

from repro.api.client import Client
from repro.api.dr import dr_printf, dr_set_ind_branch_checker
from repro.isa.operands import PcOperand
from repro.resilience.guard import ClientHalt


class SecurityViolation(ClientHalt):
    """An indirect control transfer violated the shepherding policy.

    A :class:`~repro.resilience.guard.ClientHalt`: stopping the program
    is this client's *purpose*, so the fault guard must let it
    propagate rather than treat it as a client bug."""

    def __init__(self, kind, target):
        super().__init__(
            "%s to unapproved target 0x%x" % (kind, target)
        )
        self.kind = kind
        self.target = target


class ProgramShepherding(Client):
    """Enforce function-entry and return-site policies."""

    def __init__(self, image=None, enforce=True):
        super().__init__()
        self.enforce = enforce
        self.allowed_entries = set()
        self.return_sites = set()
        self.violations = []
        self.checks_performed = 0
        if image is not None:
            self.trust_image(image)

    # ------------------------------------------------------------- policies

    def trust_image(self, image):
        """Allow every function symbol of an image as an entry point
        (the shepherding paper's "code origins" trust in the loaded
        binary)."""
        for name, addr in image.symbols.items():
            if name.startswith("fn_") or name == "_start" or name == "__thread_exit":
                self.allowed_entries.add(addr)

    def allow_entry(self, addr):
        self.allowed_entries.add(addr)

    # --------------------------------------------------------------- hooks

    def basic_block(self, context, tag, ilist):
        for instr in ilist:
            if instr.is_bundle or instr.is_label() or instr.level < 2:
                continue
            if not instr.is_cti():
                continue
            if instr.is_call():
                # every call site (direct or indirect) creates a legal
                # return site just after it
                if instr.raw_bits_valid():
                    self.return_sites.add(instr.raw_pc + len(instr.raw))
                target = instr.target
                if isinstance(target, PcOperand):
                    self.allowed_entries.add(target.pc)
            if instr.is_indirect_branch():
                self._arm(instr)

    def trace(self, context, tag, ilist):
        # Traces are rebuilt from (possibly re-armed) block code; make
        # sure every indirect branch carries its checker.
        for instr in ilist:
            if instr.is_bundle or instr.is_label() or instr.level < 2:
                continue
            if instr.is_cti() and instr.is_indirect_branch():
                self._arm(instr)

    def _arm(self, instr):
        if instr.is_ret():
            dr_set_ind_branch_checker(instr, self._check_return)
        else:
            dr_set_ind_branch_checker(instr, self._check_entry)

    # ------------------------------------------------------------- checking

    def _check_entry(self, context, target):
        self.checks_performed += 1
        if target in self.allowed_entries:
            return
        self.violations.append(("indirect-entry", target))
        if self.enforce:
            raise SecurityViolation("indirect-entry", target)

    def _check_return(self, context, target):
        self.checks_performed += 1
        if target in self.return_sites or target in self.allowed_entries:
            return
        self.violations.append(("return", target))
        if self.enforce:
            raise SecurityViolation("return", target)

    def exit(self):
        dr_printf(
            self,
            "shepherding: %d checks, %d violations, %d trusted entries, "
            "%d return sites",
            self.checks_performed,
            len(self.violations),
            len(self.allowed_entries),
            len(self.return_sites),
        )
