"""Client composition: run several clients as one (Figure 5's final bar).

Hooks dispatch to every sub-client in order; ``end_trace`` returns the
first non-DEFAULT answer.  The composition order matters for the "all
optimizations" configuration: custom traces shape the trace first, then
redundant load removal, then strength reduction, then indirect-branch
dispatch instruments what remains.
"""

from repro.api.client import Client, DEFAULT_TRACE_END


class CombinedClient(Client):
    def __init__(self, clients):
        super().__init__()
        self.clients = list(clients)

    def attach(self, runtime):
        super().attach(runtime)
        for c in self.clients:
            c.attach(runtime)

    def init(self):
        for c in self.clients:
            c.init()

    def exit(self):
        for c in self.clients:
            c.exit()

    def thread_init(self, context):
        for c in self.clients:
            c.thread_init(context)

    def thread_exit(self, context):
        for c in self.clients:
            c.thread_exit(context)

    def basic_block(self, context, tag, ilist):
        for c in self.clients:
            c.basic_block(context, tag, ilist)

    def trace(self, context, tag, ilist):
        for c in self.clients:
            c.trace(context, tag, ilist)

    def fragment_deleted(self, context, tag):
        for c in self.clients:
            c.fragment_deleted(context, tag)

    def end_trace(self, context, trace_tag, next_tag):
        for c in self.clients:
            answer = c.end_trace(context, trace_tag, next_tag)
            if answer != DEFAULT_TRACE_END:
                return answer
        return DEFAULT_TRACE_END


def make_all_optimizations():
    """The paper's "all four optimizations in combination" client."""
    from repro.clients.custom_traces import CustomTraces
    from repro.clients.indirect_dispatch import IndirectBranchDispatch
    from repro.clients.redundant_load import RedundantLoadRemoval
    from repro.clients.strength_reduce import StrengthReduction

    return CombinedClient(
        [
            CustomTraces(),
            RedundantLoadRemoval(),
            StrengthReduction(),
            IndirectBranchDispatch(),
        ]
    )
