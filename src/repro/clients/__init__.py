"""Sample DynamoRIO clients (paper Section 4) plus instrumentation demos.

The four optimizations evaluated in the paper's Figure 5:

=====================  ===============================================
``RedundantLoadRemoval``    Section 4.1 — classical optimization applied
                            dynamically to traces
``StrengthReduction``       Section 4.2 / Figure 3 — inc→add 1 on the
                            Pentium 4 (architecture-specific)
``IndirectBranchDispatch``  Section 4.3 / Figure 4 — adaptive inline
                            dispatch replacing hashtable lookups
``CustomTraces``            Section 4.4 — call-inlining traces via
                            dr_mark_trace_head / end_trace
=====================  ===============================================

Non-optimization uses (Sections 1 and 7): ``InstructionCounter``,
``OpcodeProfiler``, ``NullClient``.  ``CombinedClient`` composes
sub-clients (the paper's "all applied in combination" bar).
"""

from repro.clients.redundant_load import RedundantLoadRemoval
from repro.clients.strength_reduce import StrengthReduction
from repro.clients.indirect_dispatch import IndirectBranchDispatch
from repro.clients.custom_traces import CustomTraces
from repro.clients.instrumentation import (
    InstructionCounter,
    NullClient,
    OpcodeProfiler,
)
from repro.clients.inline_count import InlineInstructionCounter
from repro.clients.combined import CombinedClient, make_all_optimizations
from repro.clients.shepherd import ProgramShepherding, SecurityViolation

__all__ = [
    "RedundantLoadRemoval",
    "StrengthReduction",
    "IndirectBranchDispatch",
    "CustomTraces",
    "InstructionCounter",
    "InlineInstructionCounter",
    "OpcodeProfiler",
    "NullClient",
    "CombinedClient",
    "make_all_optimizations",
    "ProgramShepherding",
    "SecurityViolation",
]
