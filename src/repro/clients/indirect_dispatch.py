"""Adaptive indirect branch dispatch (paper Section 4.3, Figure 4).

The hashtable lookup for indirect branches is DynamoRIO's single
greatest overhead.  This client value-profiles the targets of each
trace-inlined indirect branch: a profiling routine (reached only when
the branch leaves the trace, i.e. when the inlined check misses)
records targets, and once enough samples accumulate it *rewrites its
own trace* — ``dr_decode_fragment`` + ``dr_replace_fragment`` — to
insert compare-and-direct-branch pairs for the hottest targets ahead of
the hashtable lookup.

Following the paper: the profiling call stays in the trace (only
reached when every compare misses), inserted targets are never removed,
and the dispatch chain grows until ``max_targets``.
"""

from collections import Counter

from repro.api.client import Client
from repro.api.dr import (
    dr_decode_fragment,
    dr_get_ind_dispatch,
    dr_printf,
    dr_replace_fragment,
    dr_set_ind_branch_profiler,
    dr_set_ind_dispatch,
)


class _SiteProfile:
    __slots__ = ("samples", "installed", "rewrites")

    def __init__(self):
        self.samples = Counter()
        self.installed = set()
        self.rewrites = 0


class IndirectBranchDispatch(Client):
    """Profile indirect-branch targets, rewrite traces adaptively."""

    def __init__(self, sample_threshold=32, max_targets=4, add_per_rewrite=2):
        super().__init__()
        self.sample_threshold = sample_threshold
        self.max_targets = max_targets
        self.add_per_rewrite = add_per_rewrite
        self.sites = {}  # (trace_tag, site_index) -> _SiteProfile
        self.traces_rewritten = 0

    # -------------------------------------------------------------- hooks

    def trace(self, context, tag, ilist):
        for site_index, instr in enumerate(self._inlined_indirects(ilist)):
            key = (tag, site_index)
            self.sites.setdefault(key, _SiteProfile())
            dr_set_ind_branch_profiler(instr, self._make_profiler(key))

    @staticmethod
    def _inlined_indirects(ilist):
        """All indirect branches in the trace, in order.

        Both trace-inlined branches (whose check can miss) and the
        trace-ending indirect exit benefit from a dispatch chain ahead
        of the hashtable lookup.
        """
        out = []
        for instr in ilist:
            if instr.is_label():
                continue
            if instr.level >= 2 and instr.is_cti() and instr.is_indirect_branch():
                out.append(instr)
        return out

    # ----------------------------------------------------------- profiling

    def _make_profiler(self, key):
        def profile(context, target):
            site = self.sites[key]
            site.samples[target] += 1
            if sum(site.samples.values()) >= self.sample_threshold:
                self._rewrite(context, key)

        return profile

    def _rewrite(self, context, key):
        trace_tag, site_index = key
        site = self.sites[key]
        room = self.max_targets - len(site.installed)
        if room <= 0:
            site.samples.clear()
            return
        hot = [
            tag
            for tag, _count in site.samples.most_common()
            if tag not in site.installed
        ][: min(room, self.add_per_rewrite)]
        site.samples.clear()
        if not hot:
            return
        ilist = dr_decode_fragment(context, trace_tag)
        if ilist is None:
            return
        indirects = self._inlined_indirects(ilist)
        if site_index >= len(indirects):
            return
        instr = indirects[site_index]
        existing = dr_get_ind_dispatch(instr)
        dr_set_ind_dispatch(instr, tuple(existing) + tuple(hot))
        # The profiling call is kept: it is only reached if none of the
        # hot targets match (paper Figure 4).
        dr_set_ind_branch_profiler(instr, self._make_profiler(key))
        if dr_replace_fragment(context, trace_tag, ilist):
            site.installed.update(hot)
            site.rewrites += 1
            self.traces_rewritten += 1

    def exit(self):
        total_sites = len(self.sites)
        expanded = sum(1 for s in self.sites.values() if s.installed)
        dr_printf(
            self,
            "indirect dispatch: %d inlined sites, %d expanded, %d rewrites",
            total_sites,
            expanded,
            self.traces_rewritten,
        )
