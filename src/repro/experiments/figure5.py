"""Figure 5: normalized execution time per benchmark and client.

Six bars per benchmark: base DynamoRIO, each of the four sample
optimizations applied independently, and all four combined — on the
Pentium 4 model, normalized to native execution (smaller is better).

Paper shape to reproduce:

* base DynamoRIO breaks even on many benchmarks, with the largest
  slowdowns on indirect-branch-heavy ones;
* redundant load removal is strongest on FP (mgrid ≈ 0.6×), mild on INT;
* inc→add helps a number of benchmarks on the P4;
* indirect-branch dispatch wins on indirect-heavy INT benchmarks;
* custom traces win on call-heavy INT benchmarks;
* perlbmk and gcc (multiple short runs, little re-use) *slow down*
  under optimization — the time spent optimizing is never amortized;
* combined: FP mean noticeably better than native; overall mean around
  native, ≈ 12% better than base DynamoRIO.
"""

from repro.clients import (
    CustomTraces,
    IndirectBranchDispatch,
    RedundantLoadRemoval,
    StrengthReduction,
    make_all_optimizations,
)
from repro.experiments.harness import Config, geometric_mean, normalized_time
from repro.workloads import all_benchmarks, fp_benchmarks, int_benchmarks

CONFIGS = [
    ("base", Config("base")),
    ("rlr", Config("rlr", client_factory=RedundantLoadRemoval)),
    ("inc2add", Config("inc2add", client_factory=StrengthReduction)),
    ("ibdisp", Config("ibdisp", client_factory=IndirectBranchDispatch)),
    ("ctrace", Config("ctrace", client_factory=CustomTraces)),
    ("all", Config("all", client_factory=make_all_optimizations)),
]


def run(scale="small", benchmarks=None):
    """Returns {benchmark: {config: normalized_time}} plus means."""
    names = benchmarks or [b.name for b in all_benchmarks()]
    results = {}
    for name in names:
        results[name] = {
            key: normalized_time(name, scale, config)
            for key, config in CONFIGS
        }
    return results


def summarize(results):
    """Geometric means per suite and overall for each configuration."""
    int_names = [b.name for b in int_benchmarks() if b.name in results]
    fp_names = [b.name for b in fp_benchmarks() if b.name in results]
    summary = {}
    for key, _config in CONFIGS:
        summary[key] = {
            "int": geometric_mean([results[n][key] for n in int_names]),
            "fp": geometric_mean([results[n][key] for n in fp_names]),
            "all": geometric_mean([results[n][key] for n in results]),
        }
    return summary


def main(scale="small", benchmarks=None):
    results = run(scale, benchmarks)
    header = "%-10s" + " %8s" * len(CONFIGS)
    row = "%-10s" + " %8.3f" * len(CONFIGS)
    print("Figure 5: normalized execution time (vs native, smaller is better)")
    print(header % (("benchmark",) + tuple(k for k, _c in CONFIGS)))
    for name in results:
        print(row % ((name,) + tuple(results[name][k] for k, _c in CONFIGS)))
    summary = summarize(results)
    print("-" * 64)
    for group in ("int", "fp", "all"):
        print(
            row
            % (
                ("mean-%s" % group,)
                + tuple(summary[k][group] for k, _c in CONFIGS)
            )
        )
    base_all = summary["base"]["all"]
    combined_all = summary["all"]["all"]
    print(
        "combined vs base DynamoRIO: %.1f%% improvement (paper: 12%%)"
        % ((1 - combined_all / base_all) * 100)
    )
    return results, summary


if __name__ == "__main__":
    import sys

    main(scale=sys.argv[1] if len(sys.argv) > 1 else "small")
