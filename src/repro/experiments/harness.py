"""Shared experiment machinery.

``measure(name, scale, configure)`` runs one benchmark under one
configuration and returns total simulated cycles, handling the
multiple-short-runs benchmarks (gcc, perlbmk): those are executed
``runs`` times with cold caches, exactly like SPEC invoking the binary
repeatedly — the effect behind the paper's perlbmk/gcc slowdowns.

Results are memoized per (benchmark, scale, config-key) within a
process so table and figure modules can share baseline runs.
"""

from repro.core import DynamoRIO, RuntimeOptions
from repro.loader import Process
from repro.machine.cost import CostModel, Family
from repro.machine.interp import Interpreter
from repro.workloads import benchmark, load_benchmark


class Config:
    """One experimental configuration."""

    def __init__(self, key, options_factory=None, client_factory=None,
                 family=Family.PENTIUM_IV, native=False):
        self.key = key
        self.options_factory = options_factory or RuntimeOptions.with_traces
        self.client_factory = client_factory
        self.family = family
        self.native = native

    def __repr__(self):
        return "<Config %s>" % self.key


NATIVE = Config("native", native=True)

_cache = {}


def measure(name, scale, config):
    """Total simulated cycles for ``name`` under ``config``.

    Multi-run benchmarks are summed over their runs (native runs are
    repeated too, so normalization stays fair).
    """
    cache_key = (name, scale, config.key, config.family)
    if cache_key in _cache:
        return _cache[cache_key]
    bench = benchmark(name)
    image = load_benchmark(name, scale)
    total_cycles = 0
    events = {}
    outputs = []
    for _run in range(bench.runs):
        process = Process(image)
        if config.native:
            result = Interpreter(
                process, CostModel(config.family), mode="native"
            ).run()
        else:
            client = (
                config.client_factory() if config.client_factory else None
            )
            runtime = DynamoRIO(
                process,
                options=config.options_factory(),
                client=client,
                cost_model=CostModel(config.family),
            )
            result = runtime.run()
        total_cycles += result.cycles
        outputs.append(result.output)
        for key, value in result.events.items():
            events[key] = events.get(key, 0) + value
    measurement = {
        "cycles": total_cycles,
        "events": events,
        "output": outputs[0],
    }
    _cache[cache_key] = measurement
    return measurement


def normalized_time(name, scale, config):
    """Cycles under config / native cycles (the paper's metric)."""
    native = measure(name, scale, NATIVE)
    under = measure(name, scale, config)
    if under["output"] != native["output"]:
        raise AssertionError(
            "transparency violated for %s under %s" % (name, config.key)
        )
    return under["cycles"] / native["cycles"]


def geometric_mean(values):
    if not values:
        return float("nan")
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))
