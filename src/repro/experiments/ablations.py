"""Ablation studies for the design choices DESIGN.md calls out.

Not in the paper, but each probes a knob the paper's design fixes:

* **trace-head threshold** — too low builds cold traces, too high pays
  counting overhead longer (Section 3.5's counter mechanism);
* **code-cache capacity** — unlimited (the paper's configuration) vs
  constrained caches with coarse flushing;
* **dispatch chain length** — how many compare-and-branch pairs the
  Section 4.3 client may install before the chain costs more than the
  hashtable lookup it replaces;
* **custom-trace maximum size** — Section 4.4's unrolling guard.
"""

from repro.clients import CustomTraces, IndirectBranchDispatch
from repro.core import RuntimeOptions
from repro.experiments.harness import Config, normalized_time


def trace_threshold_sweep(name="crafty", scale="test", thresholds=(5, 20, 80, 320)):
    results = {}
    for threshold in thresholds:
        def factory(_t=threshold):
            opts = RuntimeOptions.with_traces()
            opts.trace_threshold = _t
            return opts

        config = Config("threshold_%d" % threshold, factory)
        results[threshold] = normalized_time(name, scale, config)
    return results


def cache_limit_sweep(name="crafty", scale="test", limits=(None, 4096, 1536)):
    results = {}
    for limit in limits:
        def factory(_l=limit):
            opts = RuntimeOptions.with_traces()
            opts.code_cache_limit = _l
            return opts

        key = "cache_%s" % ("unlimited" if limit is None else limit)
        results[limit] = normalized_time(name, scale, Config(key, factory))
    return results


def dispatch_targets_sweep(name="parser", scale="small", max_targets=(0, 2, 4, 8)):
    """Run at 'small' scale: the adaptive rewrites need enough run
    length to amortize their profiling clean calls."""
    results = {}
    for n in max_targets:
        if n == 0:
            config = Config("disp_0")  # no client at all
        else:
            config = Config(
                "disp_%d" % n,
                client_factory=lambda _n=n: IndirectBranchDispatch(max_targets=_n),
            )
        results[n] = normalized_time(name, scale, config)
    return results


def custom_trace_size_sweep(name="crafty", scale="test", sizes=(4, 12, 24)):
    results = {}
    for size in sizes:
        config = Config(
            "ctrace_%d" % size,
            client_factory=lambda _s=size: CustomTraces(max_trace_blocks=_s),
        )
        results[size] = normalized_time(name, scale, config)
    return results


def main():
    print("Ablation: trace-head threshold (crafty, normalized time)")
    for threshold, value in trace_threshold_sweep().items():
        print("  threshold=%4d  %.3f" % (threshold, value))
    print("Ablation: code cache limit (crafty)")
    for limit, value in cache_limit_sweep().items():
        print("  limit=%-9s %.3f" % (limit, value))
    print("Ablation: dispatch chain length (parser)")
    for n, value in dispatch_targets_sweep().items():
        print("  max_targets=%d  %.3f" % (n, value))
    print("Ablation: custom trace max blocks (crafty)")
    for size, value in custom_trace_size_sweep().items():
        print("  max_blocks=%2d  %.3f" % (size, value))


if __name__ == "__main__":
    main()
