"""Experiment harness regenerating every table and figure of the paper.

==================  =================================================
``table1``          Table 1: emulation → cache → links → traces
``table2``          Table 2: decode+encode time/memory per level
``figure5``         Figure 5: normalized time per benchmark × client
``ablations``       design-choice sweeps beyond the paper
==================  =================================================

Each module has a ``run()`` returning structured results and a
``main()`` that prints the paper-style table; ``python -m
repro.experiments.<name>`` runs it from the command line.
"""
