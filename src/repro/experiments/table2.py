"""Table 2: time and memory to decode+encode basic blocks per level.

Paper values (average across SPEC2000 basic blocks)::

    Level   Time (us)   Memory (bytes)
    0          2.12          64.00
    1         12.42         628.95
    2         13.01         629.07
    3         19.10         791.55
    4         61.79         791.55

The claims to reproduce: time strictly monotone in level with a large
(order-of-magnitude) spread between Level 0 and Level 4; memory jumping
at Level 1 (per-instruction nodes) and again at Level 3 (operand
arrays), flat from 3 to 4.

The blocks measured are all static basic blocks of the whole workload
suite, discovered by scanning each image's code section.
"""

import time

from repro.ir.instr import Instr
from repro.ir.instrlist import InstrList
from repro.isa.decoder import decode_boundary, decode_opcode
from repro.isa.opcodes import OP_INFO
from repro.loader import Process
from repro.workloads import all_benchmarks, load_benchmark

PAPER = {
    0: (2.12, 64.00),
    1: (12.42, 628.95),
    2: (13.01, 629.07),
    3: (19.10, 791.55),
    4: (61.79, 791.55),
}


def collect_blocks(scale="test", limit=None):
    """All static basic blocks (raw bytes + start pc) across the suite."""
    blocks = []
    for bench in all_benchmarks():
        image = load_benchmark(bench.name, scale)
        process = Process(image)
        view = process.memory.view()
        for section in image.sections:
            if section.writable:
                continue
            pc = section.addr
            end = section.addr + len(section.data)
            start = pc
            while pc < end:
                try:
                    opcode, _eflags, length = decode_opcode(view, pc)
                except Exception:
                    break
                pc += length
                if OP_INFO[opcode].is_cti:
                    blocks.append((start, bytes(view[start:pc])))
                    start = pc
            if pc > start:
                blocks.append((start, bytes(view[start:pc])))
    if limit is not None:
        blocks = blocks[:limit]
    return blocks


def process_block_at_level(raw, pc, level):
    """Decode a block's bytes to ``level`` and encode it back.

    Returns the built InstrList (so memory can be measured).  Mirrors
    the paper's measurement: decode to the level, then produce machine
    code again.
    """
    if level == 0:
        il = InstrList([Instr.bundle(raw, pc)])
    else:
        il = InstrList()
        off = 0
        while off < len(raw):
            n = decode_boundary(raw, off)
            instr = Instr.from_raw(raw[off : off + n], pc + off)
            if level >= 2:
                instr.opcode  # Level-2 decode
            if level >= 3:
                instr.srcs  # full decode
            if level == 4:
                # invalidate raw bits: the block must be re-encoded
                # through the full template search
                instr._invalidate_raw()
            il.append(instr)
            off += n
    il.encode(start_pc=pc)
    return il


def run(scale="test", repeats=3, limit=400):
    """Returns {level: (avg_time_us, avg_memory_bytes)}."""
    blocks = collect_blocks(scale, limit=limit)
    results = {}
    for level in range(5):
        built = [process_block_at_level(raw, pc, level) for pc, raw in blocks]
        memory = sum(il.memory_footprint() for il in built) / len(built)
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            for pc, raw in blocks:
                process_block_at_level(raw, pc, level)
            elapsed = time.perf_counter() - t0
            best = min(best, elapsed)
        avg_us = best / len(blocks) * 1e6
        results[level] = (avg_us, memory)
    return results


def main(scale="test"):
    results = run(scale)
    print("Table 2: decode+encode cost per representation level")
    print("%5s %18s %24s" % ("Level", "Time us (paper)", "Memory bytes (paper)"))
    for level in range(5):
        t, m = results[level]
        pt, pm = PAPER[level]
        print("%5d %9.2f (%6.2f) %12.2f (%8.2f)" % (level, t, pt, m, pm))
    return results


if __name__ == "__main__":
    main()
