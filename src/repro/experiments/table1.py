"""Table 1: performance of each mechanism added to the interpreter.

Paper values (normalized execution time, smaller is better)::

    System Type               crafty    vpr
    Emulation                 ~300.0    ~300.0
    + Basic block cache         26.1     26.0
    + Link direct branches       5.1      3.0
    + Link indirect branches     2.0      1.2
    + Traces                     1.7      1.1

The reproduction must match the *ordering* and rough factors: emulation
two orders of magnitude off, caching cutting an order of magnitude,
each linking step a large constant factor, traces a final improvement.
"""

from repro.core import RuntimeOptions
from repro.experiments.harness import Config, normalized_time

BENCHMARKS = ("crafty", "vpr")

ROWS = [
    ("Emulation", Config("emulation", RuntimeOptions.emulation)),
    ("+ Basic block cache", Config("bb_cache", RuntimeOptions.bb_cache_only)),
    ("+ Link direct branches", Config("link_direct", RuntimeOptions.with_direct_links)),
    ("+ Link indirect branches", Config("link_indirect", RuntimeOptions.with_indirect_links)),
    ("+ Traces", Config("traces", RuntimeOptions.with_traces)),
]

PAPER = {
    "Emulation": {"crafty": 300.0, "vpr": 300.0},
    "+ Basic block cache": {"crafty": 26.1, "vpr": 26.0},
    "+ Link direct branches": {"crafty": 5.1, "vpr": 3.0},
    "+ Link indirect branches": {"crafty": 2.0, "vpr": 1.2},
    "+ Traces": {"crafty": 1.7, "vpr": 1.1},
}


def run(scale="test"):
    """Returns {row_label: {benchmark: normalized_time}}."""
    results = {}
    for label, config in ROWS:
        results[label] = {
            name: normalized_time(name, scale, config) for name in BENCHMARKS
        }
    return results


def main(scale="test"):
    results = run(scale)
    print("Table 1: normalized execution time (ours vs paper)")
    print("%-26s %16s %16s" % ("System Type", "crafty", "vpr"))
    for label, _config in ROWS:
        ours = results[label]
        paper = PAPER[label]
        print(
            "%-26s %7.1f (%6.1f) %7.1f (%6.1f)"
            % (label, ours["crafty"], paper["crafty"], ours["vpr"], paper["vpr"])
        )
    return results


if __name__ == "__main__":
    main()
