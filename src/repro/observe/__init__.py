"""``repro.observe`` — structured runtime tracing and profiling (drtrace).

The observability layer the adaptive-optimization work stands on:

=================  ====================================================
``events``         typed event kinds, the bounded-ring :class:`Observer`
``profiler``       per-fragment cycle/entry attribution
``sinks``          JSONL export and the end-of-run text report
=================  ====================================================

Enable with ``RuntimeOptions(trace_events=True)`` (or the
``python -m repro.tools.trace`` CLI); consume from a client via
``dr_register_event_tracer`` / ``dr_get_profile``.  With tracing off
the runtime's ``observer`` is ``None`` and every emit site is a single
pointer check — simulated cycles are identical either way.
"""

from repro.observe.events import (
    EVENT_KINDS,
    EV_CACHE_EVICT,
    EV_CACHE_EVICTION,
    EV_CACHE_RESIZE,
    EV_CLEAN_CALL,
    EV_CLIENT_FAULT,
    EV_CLIENT_HOOK,
    EV_CLIENT_QUARANTINED,
    EV_CONTEXT_SWITCH,
    EV_DISPATCH_CHECK_HIT,
    EV_FRAGMENT_BAILOUT,
    EV_FRAGMENT_DELETE,
    EV_FRAGMENT_EMIT,
    EV_FRAGMENT_LINK,
    EV_FRAGMENT_REPLACE,
    EV_FRAGMENT_UNLINK,
    EV_IBL_HIT,
    EV_IBL_MISS,
    EV_INLINE_CHECK_HIT,
    EV_SIGNAL_DELIVERED,
    EV_SMC_INVALIDATE,
    EV_THREAD_SPAWN,
    EV_TRACE_HEAD_COUNT,
    EV_TRACE_HEAD_PROMOTED,
    EV_TRACE_STITCH,
    Event,
    Observer,
    STATS_EVENT_MAP,
    replay_stats,
)
from repro.observe.profiler import OVERHEAD_KEY, FragmentProfiler
from repro.observe.sinks import (
    JsonlSink,
    format_event,
    format_report,
    write_jsonl,
)

__all__ = [
    "EVENT_KINDS",
    "EV_CACHE_EVICT",
    "EV_CACHE_EVICTION",
    "EV_CACHE_RESIZE",
    "EV_CLEAN_CALL",
    "EV_CLIENT_FAULT",
    "EV_CLIENT_HOOK",
    "EV_CLIENT_QUARANTINED",
    "EV_CONTEXT_SWITCH",
    "EV_DISPATCH_CHECK_HIT",
    "EV_FRAGMENT_BAILOUT",
    "EV_FRAGMENT_DELETE",
    "EV_FRAGMENT_EMIT",
    "EV_FRAGMENT_LINK",
    "EV_FRAGMENT_REPLACE",
    "EV_FRAGMENT_UNLINK",
    "EV_IBL_HIT",
    "EV_IBL_MISS",
    "EV_INLINE_CHECK_HIT",
    "EV_SIGNAL_DELIVERED",
    "EV_SMC_INVALIDATE",
    "EV_THREAD_SPAWN",
    "EV_TRACE_HEAD_COUNT",
    "EV_TRACE_HEAD_PROMOTED",
    "EV_TRACE_STITCH",
    "Event",
    "FragmentProfiler",
    "JsonlSink",
    "Observer",
    "OVERHEAD_KEY",
    "STATS_EVENT_MAP",
    "format_event",
    "format_report",
    "replay_stats",
    "write_jsonl",
]
