"""Per-fragment cycle and entry-count attribution.

The profiler samples the runtime's cycle counter at *fragment
boundaries* — dispatch into a fragment, and the exit back to the
dispatcher — never per instruction, so the execution engines' hot
loops stay untouched.  Between two samples every simulated cycle is
attributed to the current *attribution target*: the fragment being
executed, or the ``OVERHEAD`` bucket (dispatch, block building, trace
stitching, client hooks, scheduling) when control is in the runtime.

Because samples are deltas of the same monotonically increasing
counter, attribution is *exact*: fragment cycles plus overhead cycles
always equal the run's total simulated cycles (the hot-table test
asserts the 1%-of-total acceptance bound via exact equality).

A fragment passes through the profiler many times; keys are
``(kind, tag)`` so a replaced fragment (same tag, new generation)
accumulates into the same row — matching how dr_replace_fragment keeps
a tag's identity stable across re-optimization.
"""

OVERHEAD_KEY = ("overhead", None)


class FragmentProfiler:
    """Cycle/entry attribution over (kind, tag) fragment keys."""

    def __init__(self):
        self._cycles = {}  # (kind, tag) -> attributed cycles
        self._entries = {}  # (kind, tag) -> entry count
        self._last = 0  # cycle stamp of the previous sample
        self._current = OVERHEAD_KEY

    # -------------------------------------------------------------- sampling

    def _attribute(self, now):
        delta = now - self._last
        if delta:
            cur = self._current
            cycles = self._cycles
            cycles[cur] = cycles.get(cur, 0) + delta
        self._last = now

    def enter_fragment(self, fragment, now):
        """Dispatch is entering ``fragment``; cycles since the last
        sample belong to whatever ran before (previous fragment in a
        linked chain, or runtime overhead)."""
        self._attribute(now)
        key = (fragment.kind, fragment.tag)
        self._current = key
        entries = self._entries
        entries[key] = entries.get(key, 0) + 1

    def to_overhead(self, now):
        """Control left the code cache for the dispatcher."""
        self._attribute(now)
        self._current = OVERHEAD_KEY

    def finalize(self, now):
        """Attribute the tail of the run and close the books."""
        self._attribute(now)
        self._current = OVERHEAD_KEY

    # --------------------------------------------------------------- queries

    def fragment_count(self):
        return sum(1 for k in self._cycles if k != OVERHEAD_KEY)

    def attributed_cycles(self):
        """Cycles attributed to fragments (excludes overhead)."""
        return sum(
            c for k, c in self._cycles.items() if k != OVERHEAD_KEY
        )

    def overhead_cycles(self):
        return self._cycles.get(OVERHEAD_KEY, 0)

    def total_cycles(self):
        return sum(self._cycles.values())

    def entries(self, key):
        return self._entries.get(key, 0)

    def hot_fragments(self, top=None):
        """The hot-fragment table: rows sorted by attributed cycles.

        Each row is a dict with ``tag``, ``kind``, ``entries``,
        ``cycles``, and ``share`` (fraction of *total* attributed
        cycles including overhead).
        """
        total = self.total_cycles()
        rows = []
        for key, cycles in self._cycles.items():
            if key == OVERHEAD_KEY:
                continue
            kind, tag = key
            rows.append(
                {
                    "tag": tag,
                    "kind": kind,
                    "entries": self._entries.get(key, 0),
                    "cycles": cycles,
                    "share": (cycles / total) if total else 0.0,
                }
            )
        rows.sort(key=lambda r: (-r["cycles"], r["tag"]))
        if top is not None:
            rows = rows[:top]
        return rows
