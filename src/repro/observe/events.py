"""Typed runtime events and the bounded event bus ("drtrace").

The runtime's introspection surface: every interesting transition of
the code cache (fragment emission, linking, deletion, replacement,
trace-head promotion, IBL hits/misses, cache evictions, context
switches, clean calls, ...) is a *typed event*.  When tracing is
enabled (``RuntimeOptions(trace_events=True)``) the runtime owns an
:class:`Observer` and every emit site records into its bounded ring
buffer; when disabled the runtime's ``observer`` attribute is ``None``
and each emit site is a single ``is not None`` check — the closure
engine's per-instruction hot loops carry no emit sites at all (the
profiler samples at fragment dispatch/exit granularity only), so the
simulated cycle accounting is identical with tracing on or off.

Event kinds mirror — and refine — the :class:`RuntimeStats` counters:
each counter's increment site emits a matching event, so the replayed
event stream reconstructs the counters exactly (a regression test
asserts this for both execution engines).
"""

from collections import deque, namedtuple

# ----------------------------------------------------------- event kinds

EV_FRAGMENT_EMIT = "fragment_emit"
EV_FRAGMENT_LINK = "fragment_link"
EV_FRAGMENT_UNLINK = "fragment_unlink"
EV_FRAGMENT_DELETE = "fragment_delete"
EV_FRAGMENT_REPLACE = "fragment_replace"
EV_TRACE_HEAD_PROMOTED = "trace_head_promoted"
EV_TRACE_HEAD_COUNT = "trace_head_count"
EV_TRACE_STITCH = "trace_stitch"
EV_IBL_HIT = "ibl_hit"
EV_IBL_MISS = "ibl_miss"
EV_INLINE_CHECK_HIT = "inline_check_hit"
EV_DISPATCH_CHECK_HIT = "dispatch_check_hit"
EV_CACHE_EVICTION = "cache_eviction"
# Per-fragment cache management (paper Section 6): a single-fragment
# FIFO eviction under cache_evict_policy="fifo", and an adaptive
# working-set resize of one cache unit.  EV_CACHE_EVICTION stays the
# coarse "unit hit its limit" pressure event under either policy.
EV_CACHE_EVICT = "cache_evict"
EV_CACHE_RESIZE = "cache_resize"
EV_CONTEXT_SWITCH = "context_switch"
EV_CLEAN_CALL = "clean_call"
EV_CLIENT_HOOK = "client_hook"
EV_SIGNAL_DELIVERED = "signal_delivered"
EV_THREAD_SPAWN = "thread_spawn"
# Resilience ("drguard") events.
EV_CLIENT_FAULT = "client_fault"
EV_CLIENT_QUARANTINED = "client_quarantined"
EV_FRAGMENT_BAILOUT = "fragment_bailout"
EV_SMC_INVALIDATE = "smc_invalidate"
# Detach/re-attach ("drdetach"): the runtime translated every thread to
# application state and handed execution to native, then resumed.
EV_DETACH = "detach"
EV_REATTACH = "reattach"
# Self-protection ("drshield"): an errant application store into
# runtime-owned memory or an internal runtime fault was contained
# (kind="errant_write" vs kind="internal"); an optional subsystem was
# turned off by the escalation ladder; the forward-progress watchdog
# fired on a translate/flush livelock.
EV_SHIELD_FAULT = "shield_fault"
EV_SUBSYSTEM_DISABLED = "subsystem_disabled"
EV_WATCHDOG_TRIP = "watchdog_trip"

EVENT_KINDS = (
    EV_FRAGMENT_EMIT,
    EV_FRAGMENT_LINK,
    EV_FRAGMENT_UNLINK,
    EV_FRAGMENT_DELETE,
    EV_FRAGMENT_REPLACE,
    EV_TRACE_HEAD_PROMOTED,
    EV_TRACE_HEAD_COUNT,
    EV_TRACE_STITCH,
    EV_IBL_HIT,
    EV_IBL_MISS,
    EV_INLINE_CHECK_HIT,
    EV_DISPATCH_CHECK_HIT,
    EV_CACHE_EVICTION,
    EV_CACHE_EVICT,
    EV_CACHE_RESIZE,
    EV_CONTEXT_SWITCH,
    EV_CLEAN_CALL,
    EV_CLIENT_HOOK,
    EV_SIGNAL_DELIVERED,
    EV_THREAD_SPAWN,
    EV_CLIENT_FAULT,
    EV_CLIENT_QUARANTINED,
    EV_FRAGMENT_BAILOUT,
    EV_SMC_INVALIDATE,
    EV_DETACH,
    EV_REATTACH,
    EV_SHIELD_FAULT,
    EV_SUBSYSTEM_DISABLED,
    EV_WATCHDOG_TRIP,
)

# How the event stream maps back onto RuntimeStats counters.  Each
# value is ``(event kind, data-field filter pairs)``; the drift
# regression test replays a recorded stream through this table and
# demands exact equality with the stats dictionary.
STATS_EVENT_MAP = {
    "bbs_built": (EV_FRAGMENT_EMIT, (("kind", "bb"), ("reason", "build"))),
    "traces_built": (EV_FRAGMENT_EMIT, (("kind", "trace"), ("reason", "build"))),
    "fragments_deleted": (EV_FRAGMENT_DELETE, ()),
    "fragments_replaced": (EV_FRAGMENT_REPLACE, ()),
    "context_switches": (EV_CONTEXT_SWITCH, ()),
    "direct_links": (EV_FRAGMENT_LINK, ()),
    "ibl_hits": (EV_IBL_HIT, ()),
    "ibl_misses": (EV_IBL_MISS, ()),
    "inline_check_hits": (EV_INLINE_CHECK_HIT, ()),
    "dispatch_check_hits": (EV_DISPATCH_CHECK_HIT, ()),
    "trace_head_counts": (EV_TRACE_HEAD_COUNT, ()),
    "clean_calls": (EV_CLEAN_CALL, ()),
    "client_bb_hooks": (EV_CLIENT_HOOK, (("phase", "bb"),)),
    "client_trace_hooks": (EV_CLIENT_HOOK, (("phase", "trace"),)),
    "cache_evictions": (EV_CACHE_EVICTION, ()),
    "cache_fragment_evictions": (EV_CACHE_EVICT, ()),
    "cache_resizes": (EV_CACHE_RESIZE, ()),
    "client_faults": (EV_CLIENT_FAULT, ()),
    "client_quarantines": (EV_CLIENT_QUARANTINED, ()),
    "fragment_bailouts": (EV_FRAGMENT_BAILOUT, ()),
    "smc_invalidations": (EV_SMC_INVALIDATE, ()),
    "detaches": (EV_DETACH, ()),
    "reattaches": (EV_REATTACH, ()),
    "shield_faults": (EV_SHIELD_FAULT, ()),
    "subsystems_disabled": (EV_SUBSYSTEM_DISABLED, ()),
    "watchdog_trips": (EV_WATCHDOG_TRIP, ()),
}


class Event(namedtuple("Event", ["seq", "kind", "tag", "data"])):
    """One recorded runtime event.

    ``seq``  monotonically increasing emission index (1-based);
    ``tag``  the application address the event is about, or ``None``;
    ``data`` kind-specific payload dict (possibly empty).
    """

    __slots__ = ()

    def to_dict(self):
        # The event kind exports as "event" so payloads that carry a
        # "kind" of their own (fragment_emit's bb/trace) survive the
        # flattening without clobbering the envelope.
        out = {"seq": self.seq, "event": self.kind}
        if self.tag is not None:
            out["tag"] = self.tag
        out.update(self.data)
        return out


def replay_stats(events):
    """Reconstruct the RuntimeStats counter dict from an event stream.

    Exact when the stream is complete (nothing dropped from the ring);
    the differential regression test runs with an unbounded buffer and
    asserts equality against the live counters.
    """
    counts = {}
    for field, (kind, pairs) in STATS_EVENT_MAP.items():
        counts[field] = sum(
            1
            for e in events
            if e.kind == kind
            and all(e.data.get(key) == want for key, want in pairs)
        )
    return counts


class Observer:
    """The event bus plus the per-fragment profiler.

    The runtime holds at most one; ``runtime.observer is None`` is the
    disabled state checked (once) at every emit site.  ``capacity``
    bounds the detail ring — aggregate per-kind counts are always kept,
    so summaries stay exact even after the ring wraps.  ``None`` means
    unbounded (used by replay tests).

    ``profile=False`` turns off per-fragment cycle attribution while
    keeping the event bus: ``profile_enter``/``profile_break`` are then
    ``None``, and the execution engines (which gate on those hooks, not
    on the observer itself) skip the per-pass profiler samples entirely
    — the event-tracing-only fast configuration.
    """

    def __init__(self, capacity=65536, profile=True):
        from repro.observe.profiler import FragmentProfiler

        self.capacity = capacity
        self.ring = deque(maxlen=capacity)
        self.counts = {}
        self.tracers = []  # dr_register_event_tracer callbacks
        self.profiler = FragmentProfiler()
        self.profiling = profile
        self._seq = 0
        # Bound methods re-exported so hot callers skip a dict lookup;
        # None when profiling is off (the engines' per-pass gate).
        self.profile_enter = self.profiler.enter_fragment if profile else None
        self.profile_break = self.profiler.to_overhead if profile else None

    # -------------------------------------------------------------- emission

    def emit(self, kind, tag=None, /, **data):
        # kind/tag are positional-only so payloads may carry "kind" and
        # "tag" keys of their own (e.g. fragment_emit's fragment kind).
        self._seq += 1
        event = Event(self._seq, kind, tag, data)
        counts = self.counts
        counts[kind] = counts.get(kind, 0) + 1
        self.ring.append(event)
        for fn in self.tracers:
            fn(event)

    # --------------------------------------------------------------- queries

    @property
    def total_emitted(self):
        return self._seq

    @property
    def dropped(self):
        return self._seq - len(self.ring)

    def events(self, kinds=None):
        """The recorded events (oldest first), optionally filtered."""
        if kinds is None:
            return list(self.ring)
        kinds = set(kinds)
        return [e for e in self.ring if e.kind in kinds]

    def finalize(self, cycles_now):
        """Close profiler attribution at end of run."""
        if self.profiling:
            self.profiler.finalize(cycles_now)

    def summary(self):
        """Flat integer summary merged into ``RunResult.events``."""
        prof = self.profiler
        return {
            "observe_events": self._seq,
            "observe_events_dropped": self.dropped,
            "observe_event_kinds": len(self.counts),
            "observe_fragments_profiled": prof.fragment_count(),
            "observe_attributed_cycles": prof.attributed_cycles(),
            "observe_overhead_cycles": prof.overhead_cycles(),
        }
