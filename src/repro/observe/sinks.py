"""Sinks for the drtrace event stream and profiler.

Consumption paths:

* :class:`JsonlSink` — a *streaming* JSON Lines writer usable as a
  ``dr_register_event_tracer`` callback: each event is written as it is
  emitted, and the context manager flushes and closes the file even
  when the run raises, so a crashing (or chaos-injected) run still
  leaves a complete event log on disk;
* :func:`write_jsonl` — one JSON object per recorded event from an
  already-collected list, for offline analysis;
* :func:`format_report` — the end-of-run text report (event counts,
  hot-fragment table, attribution summary) printed by
  ``python -m repro.tools.trace``;
* ``Observer.summary()`` (in :mod:`repro.observe.events`) — flat
  integer counters merged into ``RunResult.events`` so experiments can
  assert on tracing results without touching the ring.
"""

import json


class JsonlSink:
    """Streaming JSON Lines event sink.

    Callable — register it directly as an event tracer — and a context
    manager: ``__exit__`` flushes and closes unconditionally, so events
    written before an exception survive (the pre-streaming exporter
    buffered everything and lost the whole log when the run raised).

    ``kinds`` optionally restricts which event kinds are written.
    """

    def __init__(self, fp_or_path, kinds=None):
        if hasattr(fp_or_path, "write"):
            self._fp = fp_or_path
            self._owns_fp = False
        else:
            self._fp = open(fp_or_path, "w")
            self._owns_fp = True
        self._kinds = None if kinds is None else frozenset(kinds)
        self.written = 0
        self.closed = False

    def __call__(self, event):
        if self.closed:
            return
        if self._kinds is not None and event.kind not in self._kinds:
            return
        self._fp.write(json.dumps(event.to_dict(), sort_keys=True))
        self._fp.write("\n")
        self.written += 1

    def close(self):
        if self.closed:
            return
        self.closed = True
        try:
            self._fp.flush()
        finally:
            if self._owns_fp:
                self._fp.close()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False


def write_jsonl(events, fp_or_path):
    """Write events as JSON Lines; returns the number written."""
    if hasattr(fp_or_path, "write"):
        return _write_jsonl_fp(events, fp_or_path)
    with open(fp_or_path, "w") as fp:
        return _write_jsonl_fp(events, fp)


def _write_jsonl_fp(events, fp):
    n = 0
    for event in events:
        fp.write(json.dumps(event.to_dict(), sort_keys=True))
        fp.write("\n")
        n += 1
    return n


def format_event(event):
    """One-line human rendering of an event."""
    tag = "0x%x" % event.tag if event.tag is not None else "-"
    if event.data:
        detail = " ".join(
            "%s=%s" % (k, v) for k, v in sorted(event.data.items())
        )
        return "#%-7d %-20s %-10s %s" % (event.seq, event.kind, tag, detail)
    return "#%-7d %-20s %s" % (event.seq, event.kind, tag)


def format_report(observer, top=10, total_cycles=None):
    """The end-of-run text report; returns a string."""
    lines = []
    lines.append("== drtrace report ==")
    lines.append(
        "events: %d recorded (%d emitted, %d dropped from ring)"
        % (len(observer.ring), observer.total_emitted, observer.dropped)
    )
    if observer.counts:
        lines.append("")
        lines.append("event counts:")
        for kind in sorted(observer.counts):
            lines.append("  %-22s %d" % (kind, observer.counts[kind]))

    prof = observer.profiler
    attributed = prof.attributed_cycles()
    overhead = prof.overhead_cycles()
    total = prof.total_cycles()
    lines.append("")
    lines.append(
        "cycle attribution: %d in fragments, %d runtime overhead"
        % (attributed, overhead)
    )
    if total_cycles is not None:
        lines.append(
            "attribution coverage: %d / %d total simulated cycles"
            % (total, total_cycles)
        )
    rows = prof.hot_fragments(top=top)
    if rows:
        lines.append("")
        lines.append(
            "hot fragments (top %d of %d):" % (len(rows), prof.fragment_count())
        )
        lines.append(
            "  %-12s %-6s %10s %14s %7s" % ("tag", "kind", "entries", "cycles", "share")
        )
        for row in rows:
            lines.append(
                "  %-12s %-6s %10d %14d %6.1f%%"
                % (
                    "0x%x" % row["tag"],
                    row["kind"],
                    row["entries"],
                    row["cycles"],
                    100.0 * row["share"],
                )
            )
    return "\n".join(lines)
