"""drdetach differential: detach mid-run, finish natively, diff outputs.

Usage::

    python -m repro.tools.detach_diff
    python -m repro.tools.detach_diff --benchmarks gzip --modes detach

Each cell runs a benchmark under ``precise_interrupts`` with a client
that clean-calls every block and detaches at the k-th dynamic call —
mid-fragment, from inside cache execution.  The contract:

* the native continuation's output and exit code are byte-identical to
  a run that was *never* attached;
* ``detach`` mode stays native to program exit; ``reattach`` mode
  resumes translated execution after a native excursion and must also
  re-attach successfully (fragments rebuilt, stats replay-exact);
* the ``signal`` workload variant detaches with an alarm pending, so
  the deadline must carry across the transition and deliver natively;
* the ``shield`` cells detach via the drshield escalation ladder
  instead of a client call: every basic-block build faults, so the
  ladder burns its retry and flush rungs on the very first block and
  must fail over to native — still byte-identical.

Exit status is non-zero if any cell diverges.
"""

import argparse
import sys
import time

from repro.api.client import Client
from repro.api.dr import dr_detach, dr_insert_clean_call
from repro.core import DynamoRIO, RuntimeOptions
from repro.loader import Process
from repro.machine.interp import run_native
from repro.observe.events import replay_stats
from repro.resilience.faultinject import RuntimeFaultPlan
from repro.tools.chaos import workload_images
from repro.workloads import load_benchmark

ENGINES = ("tuple", "closure", "chain")
MODES = ("detach", "reattach")
DEFAULT_BENCHMARKS = ("gzip", "mcf")


class DetachClient(Client):
    """Clean-calls every block; the k-th dynamic call detaches."""

    def __init__(self, at, reattach_after=None):
        super().__init__()
        self.at = at
        self.reattach_after = reattach_after
        self.calls = 0

    def _tick(self, context):
        self.calls += 1
        if self.calls == self.at:
            dr_detach(self, reattach_after=self.reattach_after)

    def basic_block(self, context, tag, ilist):
        first = next(iter(ilist), None)
        dr_insert_clean_call(ilist, first, self._tick)


def run_cell(image, native, engine, mode, at, reattach_after):
    """One differential cell; returns (ok, detail)."""
    options = RuntimeOptions(
        closure_engine=engine != "tuple",
        chain_engine=engine == "chain",
        chain_threshold=3,
        precise_interrupts=True,
        trace_events=True,
        trace_buffer=None,
    )
    client = DetachClient(
        at, reattach_after=reattach_after if mode == "reattach" else None
    )
    runtime = DynamoRIO(Process(image), options=options, client=client)
    try:
        result = runtime.run()
    except Exception as exc:
        return False, "crashed: %s: %s" % (type(exc).__name__, exc)

    problems = []
    if result.output != native.output:
        problems.append(
            "output diverged (%r != native %r)"
            % (result.output[:32], native.output[:32])
        )
    if result.exit_code != native.exit_code:
        problems.append(
            "exit code diverged (%s != native %s)"
            % (result.exit_code, native.exit_code)
        )
    if runtime.stats.detaches != 1:
        problems.append("detached %d times" % runtime.stats.detaches)
    if mode == "reattach":
        if runtime.stats.reattaches != 1:
            problems.append(
                "re-attached %d times" % runtime.stats.reattaches
            )
        if replay_stats(runtime.observer.events()) != runtime.stats.as_dict():
            problems.append("event stream does not replay to live stats")
    elif not runtime.detached:
        problems.append("run ended attached in stay-native mode")
    if problems:
        return False, "; ".join(problems)
    return True, "ok (detached at call %d)" % at


def run_shield_cell(image, native, engine):
    """Shield-triggered detach: no client at all — a runtime fault plan
    makes every basic-block build raise, so one ``_guarded_build``
    climbs retry → flush → detach and the program finishes natively."""
    options = RuntimeOptions(
        closure_engine=engine != "tuple",
        chain_engine=engine == "chain",
        chain_threshold=3,
        precise_interrupts=True,
        trace_events=True,
        trace_buffer=None,
        shield=True,
    )
    runtime = DynamoRIO(Process(image), options=options)
    runtime.rguard.plan = RuntimeFaultPlan(
        "runtime_raise:bb_build", 0, start=1, period=1
    )
    try:
        result = runtime.run()
    except Exception as exc:
        return False, "crashed: %s: %s" % (type(exc).__name__, exc)

    problems = []
    if result.output != native.output:
        problems.append(
            "output diverged (%r != native %r)"
            % (result.output[:32], native.output[:32])
        )
    if result.exit_code != native.exit_code:
        problems.append(
            "exit code diverged (%s != native %s)"
            % (result.exit_code, native.exit_code)
        )
    if not runtime.detached:
        problems.append("shield ladder never detached")
    if runtime.stats.detaches != 1:
        problems.append("detached %d times" % runtime.stats.detaches)
    if runtime.stats.shield_faults != 3:
        problems.append(
            "%d shield faults (expected the ladder's 3)"
            % runtime.stats.shield_faults
        )
    if replay_stats(runtime.observer.events()) != runtime.stats.as_dict():
        problems.append("event stream does not replay to live stats")
    if problems:
        return False, "; ".join(problems)
    return True, "ok (ladder detached after %d faults)" % (
        runtime.stats.shield_faults
    )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--benchmarks", default=",".join(DEFAULT_BENCHMARKS),
        help="comma-separated benchmark subset",
    )
    parser.add_argument("--scale", default="test")
    parser.add_argument(
        "--modes", default=",".join(MODES), help="detach,reattach"
    )
    parser.add_argument(
        "--at", type=int, default=250,
        help="detach at this dynamic clean-call count",
    )
    parser.add_argument(
        "--reattach-after", type=int, default=5000,
        help="native instructions before re-attach",
    )
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)

    cells = []
    for name in args.benchmarks.split(","):
        cells.append((name, load_benchmark(name, args.scale), args.at,
                      args.reattach_after))
    # Pending-signal variant: the chaos signal workload arms alarms, so
    # detaching early leaves a deadline pending across the transition.
    # Small program — detach at the third call, short native window.
    signal_image = workload_images()["signal"]
    cells.append(("signal", signal_image, 3, 300))

    modes = args.modes.split(",")
    runs = failures = 0
    start = time.perf_counter()
    for name, image, at, reattach_after in cells:
        native = run_native(Process(image))
        for engine in ENGINES:
            for mode in modes:
                runs += 1
                ok, detail = run_cell(
                    image, native, engine, mode, at, reattach_after
                )
                label = "%-8s %-7s %-8s" % (name, engine, mode)
                if not ok:
                    failures += 1
                    print("FAIL %s: %s" % (label, detail))
                elif args.verbose:
                    print("ok   %s: %s" % (label, detail))
    # Shield-triggered detach: the failsafe ladder, not a client, pulls
    # the plug — same native-identity contract as every other cell.
    shield_native = run_native(Process(signal_image))
    for engine in ENGINES:
        runs += 1
        ok, detail = run_shield_cell(signal_image, shield_native, engine)
        label = "%-8s %-7s %-8s" % ("signal", engine, "shield")
        if not ok:
            failures += 1
            print("FAIL %s: %s" % (label, detail))
        elif args.verbose:
            print("ok   %s: %s" % (label, detail))
    print(
        "detach diff: %d runs, %d failures (%.1fs)"
        % (runs, failures, time.perf_counter() - start)
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
