"""Run a program with drtrace enabled and inspect the event stream.

Usage::

    python -m repro.tools.trace program.mc
    python -m repro.tools.trace program.mc --top 20
    python -m repro.tools.trace program.mc --events
    python -m repro.tools.trace program.mc --events --filter ibl_hit,ibl_miss
    python -m repro.tools.trace --benchmark mgrid --client rlr --jsonl out.jsonl

Prints the end-of-run drtrace report (event counts, hot-fragment
table, cycle-attribution coverage); ``--events`` additionally dumps the
recorded events one per line, ``--filter`` narrows them to a
comma-separated list of kinds, and ``--jsonl`` exports them as JSON
Lines for offline analysis.
"""

import argparse

from repro.core import DynamoRIO, RuntimeOptions
from repro.loader import Process
from repro.machine.cost import CostModel, Family
from repro.observe import EVENT_KINDS, JsonlSink, format_event, format_report
from repro.tools.run import CLIENTS


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("source", nargs="?", help="MiniC source file")
    parser.add_argument("--benchmark", help="run a suite benchmark instead")
    parser.add_argument("--scale", default="test")
    parser.add_argument("--client", default="none", choices=sorted(CLIENTS))
    parser.add_argument(
        "--family", default="p4", choices=["p3", "p4"], help="processor model"
    )
    parser.add_argument(
        "--top", type=int, default=10,
        help="hot-fragment table rows in the report (default 10)",
    )
    parser.add_argument(
        "--events", action="store_true",
        help="dump the recorded events, one per line",
    )
    parser.add_argument(
        "--filter", metavar="KINDS",
        help="comma-separated event kinds to keep (with --events/--jsonl)",
    )
    parser.add_argument(
        "--jsonl", metavar="FILE", help="export recorded events as JSON Lines"
    )
    parser.add_argument(
        "--buffer", type=int, default=65536,
        help="event ring capacity (0 = unbounded; default 65536)",
    )
    args = parser.parse_args(argv)

    if args.benchmark:
        from repro.workloads import load_benchmark

        image = load_benchmark(args.benchmark, args.scale)
    elif args.source:
        from repro.minicc import compile_source

        with open(args.source) as f:
            image = compile_source(f.read())
    else:
        parser.error("provide a source file or --benchmark")

    kinds = None
    if args.filter:
        kinds = [k.strip() for k in args.filter.split(",") if k.strip()]
        unknown = [k for k in kinds if k not in EVENT_KINDS]
        if unknown:
            parser.error(
                "unknown event kind(s): %s (known: %s)"
                % (", ".join(unknown), ", ".join(EVENT_KINDS))
            )

    if args.client == "shepherd":
        from repro.clients import ProgramShepherding

        client = ProgramShepherding(image=image)
    else:
        client = CLIENTS[args.client]()
    family = Family.PENTIUM_IV if args.family == "p4" else Family.PENTIUM_III
    options = RuntimeOptions.with_traces()
    options.trace_events = True
    options.trace_buffer = None if args.buffer == 0 else args.buffer
    runtime = DynamoRIO(
        Process(image),
        options=options,
        client=client,
        cost_model=CostModel(family),
    )
    # Stream the export while the run happens: events are on disk even
    # if the run raises (the sink flushes on the way out), and the
    # export is not limited by the ring capacity.
    if args.jsonl:
        with JsonlSink(args.jsonl, kinds=kinds) as sink:
            runtime.observer.tracers.append(sink)
            result = runtime.run()
        print("wrote %d events to %s" % (sink.written, args.jsonl))
    else:
        result = runtime.run()
    observer = runtime.observer

    print(
        "run: %d cycles, %d instructions, exit=%s"
        % (result.cycles, result.instructions, result.exit_code)
    )
    print(format_report(observer, top=args.top, total_cycles=result.cycles))

    if args.events:
        selected = observer.events(kinds)
        print()
        print("events (%d):" % len(selected))
        for event in selected:
            print(format_event(event))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
