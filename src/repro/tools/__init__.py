"""Command-line tools.

``python -m repro.tools.disasm`` — disassemble a MiniC program's image;
``python -m repro.tools.run`` — compile and run a MiniC file natively
and/or under the runtime with a chosen client.
"""
