"""Offline fragment linter: run the verifier rules over a workload.

Static mode (default) decodes every statically reachable basic block of
the program image and verifies each one — including the drequiv
equivalence rule, for which a pristine block is checked against itself;
dynamic mode (``--client``) actually runs the program under the runtime
with ``options.verify_fragments`` + ``options.verify_equivalence``
enabled, so traces and client-transformed fragments are verified too.
``--equiv`` is a third mode: run the program *without* emit-time
verification, then sweep the final code-cache dump and check every
resident fragment against its source blocks.

Usage::

    python -m repro.tools.lint --benchmark mgrid
    python -m repro.tools.lint program.mc --client inscount
    python -m repro.tools.lint --benchmark mgrid --equiv --client all
    python -m repro.tools.lint --benchmark crafty --client all --rules \
        linearity,levels
    python -m repro.tools.lint --benchmark mgrid --inject   # exits 1

``--inject`` is the negative control.  In static mode it runs one sweep
per registered rule, planting that rule's tabulated violation in every
decoded block, and exits 1 only when *every* rule fired on at least one
block — so CI's ``if lint --inject; then fail; fi`` catches a rule that
silently stopped detecting its own violation class.  In dynamic mode it
plants the classic unsafe meta ``add eax, 1`` in every block via a
wrapping client.

Exit status: 0 when no rule reports an error (for ``--inject``: some
rule failed to fire), 1 otherwise, 2 on usage errors.
"""

import argparse
import sys

from repro.analysis.verifier import (
    VerificationError,
    all_rules,
    verify_fragment,
)
from repro.api.client import Client
from repro.core import DynamoRIO, RuntimeOptions
from repro.core.bb_builder import build_basic_block
from repro.ir.create import (
    INSTR_CREATE_add,
    INSTR_CREATE_mov,
    OPND_CREATE_INT32,
    OPND_CREATE_MEM,
    OPND_CREATE_REG,
)
from repro.ir.instr import Instr, LabelRef
from repro.isa.encoder import encode_instr
from repro.isa.opcodes import Opcode
from repro.isa.operands import PcOperand
from repro.isa.registers import Reg
from repro.loader import Process
from repro.machine.errors import MachineFault

from repro.tools.run import CLIENTS

# Static exploration bound; real images here are far smaller.
MAX_STATIC_BLOCKS = 10000


def _meta(instr):
    from repro.api.dr import instr_set_meta

    return instr_set_meta(instr)


def _make_violation():
    """A meta-instruction that is deliberately unsafe at a block entry:
    writes ``eax`` and all six flags where both are almost surely live."""
    return _meta(
        INSTR_CREATE_add(OPND_CREATE_REG(Reg.EAX), OPND_CREATE_INT32(1))
    )


# --------------------------------------------------------------- injectors
#
# One tabulated violation per registered rule, planted into an expanded
# block.  Each returns True when it could plant (so the per-rule "fired
# somewhere" bookkeeping skips blocks it had to leave alone).


def _insert_before_last(ilist, instr):
    last = ilist.last()
    if last is None:
        return False
    ilist.insert_before(last, instr)
    return True


def _inject_linearity(ilist, tag):
    # A meta jmp whose label was never added to the list.
    orphan = Instr.label()
    ilist.append(_meta(Instr.create(Opcode.JMP, LabelRef(orphan))))
    return True


def _inject_levels(ilist, tag):
    # A Level-0 bundle whose bytes contain a control transfer.
    raw = encode_instr(Opcode.JMP, (PcOperand(tag),), pc=0)
    ilist.append(Instr.bundle(raw, 0))
    return True


def _inject_eflags(ilist, tag):
    # Meta flag-writer right before the exit CTI: the exit is a liveness
    # barrier, so the application's flags are live there by assumption.
    return _insert_before_last(
        ilist,
        _meta(INSTR_CREATE_add(OPND_CREATE_REG(Reg.EAX), OPND_CREATE_INT32(1))),
    )


def _inject_scratch(ilist, tag):
    # Meta register-writer (no flag effects) before the exit barrier.
    return _insert_before_last(
        ilist,
        _meta(INSTR_CREATE_mov(OPND_CREATE_REG(Reg.EAX), OPND_CREATE_INT32(1))),
    )


def _inject_transparency(ilist, tag):
    # Meta store through an application register: never provably
    # runtime-private, so always a transparency violation.
    return _insert_before_last(
        ilist,
        _meta(
            INSTR_CREATE_mov(
                OPND_CREATE_MEM(base=Reg.EAX), OPND_CREATE_INT32(1)
            )
        ),
    )


def _inject_equivalence(ilist, tag):
    # A NON-meta store the application never performed: invisible to the
    # structural rules (it is ordinary application-looking code, not a
    # marked meta instruction) but a semantic divergence — an extra
    # entry in the store log — that drequiv must catch at the block's
    # first observable.
    first = ilist.first()
    if first is None:
        return False
    ilist.insert_before(
        first,
        INSTR_CREATE_mov(
            OPND_CREATE_MEM(base=Reg.ESP, disp=-64), OPND_CREATE_INT32(1)
        ),
    )
    return True


INJECTORS = {
    "linearity": _inject_linearity,
    "levels": _inject_levels,
    "eflags-safety": _inject_eflags,
    "scratch-registers": _inject_scratch,
    "transparency": _inject_transparency,
    "equivalence": _inject_equivalence,
}


def _successor_tags(ilist):
    tags = []
    for instr in ilist:
        if instr.is_bundle or not instr.is_cti():
            continue
        target = instr.target if instr.num_srcs() else None
        if isinstance(target, PcOperand):
            tags.append(target.pc)
        elif isinstance(target, LabelRef):
            continue
        if instr.is_call() and instr.raw_bits_valid() and instr.raw_pc is not None:
            tags.append(instr.raw_pc + len(instr.raw))
    return tags


class Report:
    def __init__(self, rules, max_print):
        self.rules = rules
        self.max_print = max_print
        self.fragments = 0
        self.errors = 0
        self.warnings = 0
        self._printed = 0

    def add(self, where, diagnostics):
        self.fragments += 1
        for d in diagnostics:
            if d.is_error:
                self.errors += 1
            else:
                self.warnings += 1
            if self._printed < self.max_print:
                print("%s: %s" % (where, d.format()))
                self._printed += 1

    def summary(self):
        suppressed = (self.errors + self.warnings) - self._printed
        if suppressed > 0:
            print("... %d further diagnostics suppressed" % suppressed)
        print(
            "lint: %d fragment(s), %d rule(s), %d error(s), %d warning(s)"
            % (self.fragments, len(all_rules() if self.rules is None else self.rules),
               self.errors, self.warnings)
        )


def _static_blocks(image):
    """Yield ``(tag, memory)`` for every statically reachable block."""
    process = Process(image)
    memory = process.memory
    worklist = [process.entry]
    seen = set()
    while worklist and len(seen) < MAX_STATIC_BLOCKS:
        tag = worklist.pop()
        if tag in seen:
            continue
        seen.add(tag)
        try:
            ilist = build_basic_block(memory, tag)
        except MachineFault:
            # Synthetic fall-through jumps may point past a hlt into
            # data; such targets are simply not code.
            continue
        worklist.extend(_successor_tags(ilist))
        yield tag, memory


def _lint_static(image, rules, report):
    for tag, memory in _static_blocks(image):
        ilist = build_basic_block(memory, tag)
        report.add(
            "bb@0x%x" % tag,
            verify_fragment(
                ilist, kind="bb", rules=rules, tag=tag,
                source_tags=(tag,), memory=memory,
            ),
        )


def _lint_static_inject(image, rules, report):
    """Per-rule negative control: one sweep per registered rule.

    Returns True when every selected rule with an injector fired on at
    least one block (the expected outcome — callers then exit 1, which
    CI inverts)."""
    selected = [r.rule_id for r in all_rules()] if rules is None else rules
    blocks = list(_static_blocks(image))
    all_fired = True
    for rule_id in selected:
        injector = INJECTORS.get(rule_id)
        if injector is None:
            print("inject: no injector tabulated for rule %r" % rule_id)
            all_fired = False
            continue
        fired = planted = 0
        for tag, memory in blocks:
            ilist = build_basic_block(memory, tag)
            ilist.expand_bundles()
            if not injector(ilist, tag):
                continue
            planted += 1
            diagnostics = verify_fragment(
                ilist, kind="bb", rules=[rule_id], tag=tag,
                source_tags=(tag,), memory=memory,
            )
            if any(d.is_error and d.rule == rule_id for d in diagnostics):
                fired += 1
                report.add("bb@0x%x" % tag, [d for d in diagnostics if d.is_error][:1])
        print(
            "inject: rule %-14s fired on %d/%d planted block(s)"
            % (rule_id, fired, planted)
        )
        if not fired:
            all_fired = False
    return all_fired


class _InjectingClient(Client):
    """Wraps a client (or None) to plant a violation in every block."""

    def __init__(self, inner):
        super().__init__()
        self._inner = inner

    def attach(self, runtime):
        super().attach(runtime)
        if self._inner is not None:
            self._inner.attach(runtime)

    def init(self):
        if self._inner is not None:
            self._inner.init()

    def exit(self):
        if self._inner is not None:
            self._inner.exit()

    def thread_init(self, context):
        if self._inner is not None:
            self._inner.thread_init(context)

    def thread_exit(self, context):
        if self._inner is not None:
            self._inner.thread_exit(context)

    def basic_block(self, context, tag, ilist):
        if self._inner is not None:
            self._inner.basic_block(context, tag, ilist)
        ilist.expand_bundles()
        first = ilist.first()
        if first is not None:
            ilist.insert_before(first, _make_violation())

    def trace(self, context, tag, ilist):
        if self._inner is not None:
            self._inner.trace(context, tag, ilist)

    def fragment_deleted(self, context, tag):
        if self._inner is not None:
            self._inner.fragment_deleted(context, tag)

    def end_trace(self, context, trace_tag, next_tag):
        if self._inner is not None:
            return self._inner.end_trace(context, trace_tag, next_tag)
        return super().end_trace(context, trace_tag, next_tag)


def _make_client(image, client_name):
    if client_name == "shepherd":
        from repro.clients import ProgramShepherding

        return ProgramShepherding(image=image)
    return CLIENTS[client_name]()


def _lint_dynamic(image, client_name, rules, report, inject):
    client = _make_client(image, client_name)
    if inject:
        client = _InjectingClient(client)
    options = RuntimeOptions.with_traces()
    options.verify_fragments = True
    options.verify_equivalence = True
    runtime = DynamoRIO(Process(image), options=options, client=client)
    try:
        runtime.run()
    except VerificationError:
        # The error diagnostics are already recorded on
        # runtime.verifier_diagnostics by the emit gate; fall through so
        # they are reported exactly once.
        pass
    if runtime.verifier_diagnostics:
        report.add("collected", runtime.verifier_diagnostics)
    else:
        report.fragments += runtime.stats.bbs_built + runtime.stats.traces_built


def _lint_equiv(image, client_name, report):
    """Run without emit-time verification, then statically sweep the
    final code-cache dump with the equivalence rule."""
    client = _make_client(image, client_name) if client_name else None
    options = RuntimeOptions.with_traces()
    runtime = DynamoRIO(Process(image), options=options, client=client)
    runtime.run()
    checked = 0
    for thread in runtime.threads:
        for cache in (thread.bb_cache, thread.trace_cache):
            for tag in sorted(cache.fragments):
                fragment = cache.fragments[tag]
                if fragment.deleted or fragment.instrs_source is None:
                    continue
                diagnostics = verify_fragment(
                    fragment.instrs_source,
                    kind=fragment.kind,
                    rules=["equivalence"],
                    tag=fragment.tag,
                    source_tags=fragment.source_tags,
                    memory=runtime.memory,
                    max_bb_instrs=runtime.options.max_bb_instrs,
                )
                checked += 1
                report.add("%s@0x%x" % (fragment.kind, tag), diagnostics)
    print("equiv: %d cache-resident fragment(s) checked" % checked)


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.lint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("source", nargs="?", help="MiniC source file")
    parser.add_argument("--benchmark", help="lint a suite benchmark instead")
    parser.add_argument("--scale", default="test")
    parser.add_argument(
        "--client",
        default=None,
        choices=sorted(CLIENTS),
        help="run dynamically under this client instead of static decode",
    )
    parser.add_argument(
        "--equiv",
        action="store_true",
        help="run the program, then equivalence-check the final code "
        "cache dump (combine with --client to check transformed "
        "fragments)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids (default: all registered rules)",
    )
    parser.add_argument(
        "--inject",
        action="store_true",
        help="plant tabulated violations (negative control); exits 1 "
        "only when every rule caught its own violation",
    )
    parser.add_argument(
        "--max-diagnostics", type=int, default=50, metavar="N",
        help="print at most N diagnostics (default 50)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list registered rules and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print("%-18s %s" % (rule.rule_id, rule.description))
        return 0

    if args.equiv and args.inject:
        parser.error("--equiv and --inject are separate modes")

    rules = None
    if args.rules:
        rules = [r.strip() for r in args.rules.split(",") if r.strip()]
        known = {rule.rule_id for rule in all_rules()}
        for rule_id in rules:
            if rule_id not in known:
                parser.error(
                    "unknown rule %r (see --list-rules)" % rule_id
                )

    if args.benchmark:
        from repro.workloads import all_benchmarks, load_benchmark

        names = [b.name for b in all_benchmarks()]
        if args.benchmark not in names:
            parser.error(
                "unknown benchmark %r (choices: %s)"
                % (args.benchmark, ", ".join(sorted(names)))
            )
        image = load_benchmark(args.benchmark, args.scale)
    elif args.source:
        from repro.minicc import compile_source

        try:
            with open(args.source) as f:
                src = f.read()
        except OSError as exc:
            parser.error("cannot read %s: %s" % (args.source, exc.strerror))
        image = compile_source(src)
    else:
        parser.error("provide a source file or --benchmark")

    report = Report(rules, args.max_diagnostics)
    if args.equiv:
        _lint_equiv(image, args.client, report)
    elif args.client is not None:
        _lint_dynamic(image, args.client, rules, report, args.inject)
    elif args.inject:
        all_fired = _lint_static_inject(image, rules, report)
        report.summary()
        return 1 if all_fired else 0
    else:
        _lint_static(image, rules, report)
    report.summary()
    return 1 if report.errors else 0


if __name__ == "__main__":
    sys.exit(main())
