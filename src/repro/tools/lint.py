"""Offline fragment linter: run the verifier rules over a workload.

Static mode (default) decodes every statically reachable basic block of
the program image and verifies each one; dynamic mode (``--client``)
actually runs the program under the runtime with
``options.verify_fragments`` enabled, so traces and client-transformed
fragments are verified too.

Usage::

    python -m repro.tools.lint --benchmark mgrid
    python -m repro.tools.lint program.mc --client inscount
    python -m repro.tools.lint --benchmark crafty --client all --rules \
        linearity,levels
    python -m repro.tools.lint --benchmark mgrid --inject   # exits 1

``--inject`` plants a deliberately unsafe meta-instruction (an
``add eax, 1`` at the top of every block: live register *and* live
flags) to prove the pipeline fails builds — CI uses it as a negative
control.

Exit status: 0 when no rule reports an error, 1 otherwise, 2 on usage
errors.
"""

import argparse
import sys

from repro.analysis.verifier import (
    VerificationError,
    all_rules,
    verify_fragment,
)
from repro.api.client import Client
from repro.core import DynamoRIO, RuntimeOptions
from repro.core.bb_builder import build_basic_block
from repro.ir.create import INSTR_CREATE_add, OPND_CREATE_INT32, OPND_CREATE_REG
from repro.ir.instr import LabelRef
from repro.isa.operands import PcOperand
from repro.isa.registers import Reg
from repro.loader import Process
from repro.machine.errors import MachineFault

from repro.tools.run import CLIENTS

# Static exploration bound; real images here are far smaller.
MAX_STATIC_BLOCKS = 10000


def _make_violation():
    """A meta-instruction that is deliberately unsafe at a block entry:
    writes ``eax`` and all six flags where both are almost surely live."""
    from repro.api.dr import instr_set_meta

    return instr_set_meta(
        INSTR_CREATE_add(OPND_CREATE_REG(Reg.EAX), OPND_CREATE_INT32(1))
    )


def _successor_tags(ilist):
    tags = []
    for instr in ilist:
        if instr.is_bundle or not instr.is_cti():
            continue
        target = instr.target if instr.num_srcs() else None
        if isinstance(target, PcOperand):
            tags.append(target.pc)
        elif isinstance(target, LabelRef):
            continue
        if instr.is_call() and instr.raw_bits_valid() and instr.raw_pc is not None:
            tags.append(instr.raw_pc + len(instr.raw))
    return tags


class Report:
    def __init__(self, rules, max_print):
        self.rules = rules
        self.max_print = max_print
        self.fragments = 0
        self.errors = 0
        self.warnings = 0
        self._printed = 0

    def add(self, where, diagnostics):
        self.fragments += 1
        for d in diagnostics:
            if d.is_error:
                self.errors += 1
            else:
                self.warnings += 1
            if self._printed < self.max_print:
                print("%s: %s" % (where, d.format()))
                self._printed += 1

    def summary(self):
        suppressed = (self.errors + self.warnings) - self._printed
        if suppressed > 0:
            print("... %d further diagnostics suppressed" % suppressed)
        print(
            "lint: %d fragment(s), %d rule(s), %d error(s), %d warning(s)"
            % (self.fragments, len(all_rules() if self.rules is None else self.rules),
               self.errors, self.warnings)
        )


def _lint_static(image, rules, report, inject):
    process = Process(image)
    memory = process.memory
    worklist = [process.entry]
    seen = set()
    while worklist and len(seen) < MAX_STATIC_BLOCKS:
        tag = worklist.pop()
        if tag in seen:
            continue
        seen.add(tag)
        try:
            ilist = build_basic_block(memory, tag)
        except MachineFault:
            # Synthetic fall-through jumps may point past a hlt into
            # data; such targets are simply not code.
            continue
        worklist.extend(_successor_tags(ilist))
        if inject:
            ilist.expand_bundles()
            first = ilist.first()
            if first is not None:
                ilist.insert_before(first, _make_violation())
        report.add(
            "bb@0x%x" % tag, verify_fragment(ilist, kind="bb", rules=rules)
        )


class _InjectingClient(Client):
    """Wraps a client (or None) to plant a violation in every block."""

    def __init__(self, inner):
        super().__init__()
        self._inner = inner

    def attach(self, runtime):
        super().attach(runtime)
        if self._inner is not None:
            self._inner.attach(runtime)

    def init(self):
        if self._inner is not None:
            self._inner.init()

    def exit(self):
        if self._inner is not None:
            self._inner.exit()

    def thread_init(self, context):
        if self._inner is not None:
            self._inner.thread_init(context)

    def thread_exit(self, context):
        if self._inner is not None:
            self._inner.thread_exit(context)

    def basic_block(self, context, tag, ilist):
        if self._inner is not None:
            self._inner.basic_block(context, tag, ilist)
        ilist.expand_bundles()
        first = ilist.first()
        if first is not None:
            ilist.insert_before(first, _make_violation())

    def trace(self, context, tag, ilist):
        if self._inner is not None:
            self._inner.trace(context, tag, ilist)

    def fragment_deleted(self, context, tag):
        if self._inner is not None:
            self._inner.fragment_deleted(context, tag)

    def end_trace(self, context, trace_tag, next_tag):
        if self._inner is not None:
            return self._inner.end_trace(context, trace_tag, next_tag)
        return super().end_trace(context, trace_tag, next_tag)


def _lint_dynamic(image, client_name, rules, report, inject):
    if client_name == "shepherd":
        from repro.clients import ProgramShepherding

        client = ProgramShepherding(image=image)
    else:
        client = CLIENTS[client_name]()
    if inject:
        client = _InjectingClient(client)
    options = RuntimeOptions.with_traces()
    options.verify_fragments = True
    runtime = DynamoRIO(Process(image), options=options, client=client)
    try:
        runtime.run()
    except VerificationError as exc:
        report.add(exc.where or "fragment", exc.diagnostics)
    # Warnings collected along the way (errors raise immediately).
    if runtime.verifier_diagnostics:
        report.add("collected", runtime.verifier_diagnostics)
    else:
        report.fragments += runtime.stats.bbs_built + runtime.stats.traces_built


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.lint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("source", nargs="?", help="MiniC source file")
    parser.add_argument("--benchmark", help="lint a suite benchmark instead")
    parser.add_argument("--scale", default="test")
    parser.add_argument(
        "--client",
        default=None,
        choices=sorted(CLIENTS),
        help="run dynamically under this client instead of static decode",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids (default: all registered rules)",
    )
    parser.add_argument(
        "--inject",
        action="store_true",
        help="plant a deliberate violation in every block (negative control)",
    )
    parser.add_argument(
        "--max-diagnostics", type=int, default=50, metavar="N",
        help="print at most N diagnostics (default 50)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list registered rules and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print("%-18s %s" % (rule.rule_id, rule.description))
        return 0

    rules = None
    if args.rules:
        rules = [r.strip() for r in args.rules.split(",") if r.strip()]
        known = {rule.rule_id for rule in all_rules()}
        for rule_id in rules:
            if rule_id not in known:
                parser.error(
                    "unknown rule %r (see --list-rules)" % rule_id
                )

    if args.benchmark:
        from repro.workloads import all_benchmarks, load_benchmark

        names = [b.name for b in all_benchmarks()]
        if args.benchmark not in names:
            parser.error(
                "unknown benchmark %r (choices: %s)"
                % (args.benchmark, ", ".join(sorted(names)))
            )
        image = load_benchmark(args.benchmark, args.scale)
    elif args.source:
        from repro.minicc import compile_source

        try:
            with open(args.source) as f:
                src = f.read()
        except OSError as exc:
            parser.error("cannot read %s: %s" % (args.source, exc.strerror))
        image = compile_source(src)
    else:
        parser.error("provide a source file or --benchmark")

    report = Report(rules, args.max_diagnostics)
    if args.client is None:
        _lint_static(image, rules, report, args.inject)
    else:
        _lint_dynamic(image, args.client, rules, report, args.inject)
    report.summary()
    return 1 if report.errors else 0


if __name__ == "__main__":
    sys.exit(main())
