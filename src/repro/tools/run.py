"""Compile and run MiniC programs, natively and under the runtime.

Usage::

    python -m repro.tools.run program.mc
    python -m repro.tools.run program.mc --client all --stats
    python -m repro.tools.run --benchmark mgrid --client rlr
"""

import argparse

from repro.core import DynamoRIO, RuntimeOptions
from repro.loader import Process
from repro.machine.cost import CostModel, Family
from repro.machine.interp import run_native

CLIENTS = {
    "none": lambda: None,
    "null": lambda: __import__("repro.clients", fromlist=["NullClient"]).NullClient(),
    "rlr": lambda: __import__(
        "repro.clients", fromlist=["RedundantLoadRemoval"]
    ).RedundantLoadRemoval(),
    "inc2add": lambda: __import__(
        "repro.clients", fromlist=["StrengthReduction"]
    ).StrengthReduction(),
    "ibdisp": lambda: __import__(
        "repro.clients", fromlist=["IndirectBranchDispatch"]
    ).IndirectBranchDispatch(),
    "ctrace": lambda: __import__(
        "repro.clients", fromlist=["CustomTraces"]
    ).CustomTraces(),
    "all": lambda: __import__(
        "repro.clients", fromlist=["make_all_optimizations"]
    ).make_all_optimizations(),
    "inscount": lambda: __import__(
        "repro.clients", fromlist=["InstructionCounter"]
    ).InstructionCounter(),
    "inscount-inline": lambda: __import__(
        "repro.clients", fromlist=["InlineInstructionCounter"]
    ).InlineInstructionCounter(),
    "shepherd": lambda: None,  # needs the image; constructed below
}


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("source", nargs="?", help="MiniC source file")
    parser.add_argument("--benchmark", help="run a suite benchmark instead")
    parser.add_argument("--scale", default="test")
    parser.add_argument("--client", default="none", choices=sorted(CLIENTS))
    parser.add_argument(
        "--family", default="p4", choices=["p3", "p4"], help="processor model"
    )
    parser.add_argument("--native-only", action="store_true")
    parser.add_argument("--stats", action="store_true", help="dump runtime events")
    parser.add_argument(
        "--profile",
        metavar="FILE",
        help="profile the runtime run with cProfile; write pstats dump "
        "to FILE ('-' prints the top entries instead)",
    )
    args = parser.parse_args(argv)

    if args.benchmark:
        from repro.workloads import load_benchmark

        image = load_benchmark(args.benchmark, args.scale)
    elif args.source:
        from repro.minicc import compile_source

        with open(args.source) as f:
            image = compile_source(f.read())
    else:
        parser.error("provide a source file or --benchmark")

    family = Family.PENTIUM_IV if args.family == "p4" else Family.PENTIUM_III
    native = run_native(Process(image), cost_model=CostModel(family))
    print(
        "native: %d cycles, %d instructions, exit=%s"
        % (native.cycles, native.instructions, native.exit_code)
    )
    print("output: %s" % native.output.hex(" "))
    if args.native_only:
        return

    if args.client == "shepherd":
        from repro.clients import ProgramShepherding

        client = ProgramShepherding(image=image)
    else:
        client = CLIENTS[args.client]()
    runtime = DynamoRIO(
        Process(image),
        options=RuntimeOptions.with_traces(),
        client=client,
        cost_model=CostModel(family),
    )
    if args.profile:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        result = runtime.run()
        profiler.disable()
        if args.profile == "-":
            pstats.Stats(profiler).sort_stats("cumulative").print_stats(25)
        else:
            profiler.dump_stats(args.profile)
            print("profile written to %s" % args.profile)
    else:
        result = runtime.run()
    status = "TRANSPARENT" if result.output == native.output else "DIVERGED"
    print(
        "runtime[%s]: %d cycles (%.3fx native) — %s"
        % (args.client, result.cycles, result.cycles / native.cycles, status)
    )
    if args.stats:
        for key in sorted(result.events):
            if result.events[key]:
                print("  %-24s %d" % (key, result.events[key]))
    log = getattr(runtime, "client_log", None)
    if log:
        print("client log:")
        for line in log:
            print("  " + line)


if __name__ == "__main__":
    main()
