"""Disassembler: render an image's code with symbols.

Usage::

    python -m repro.tools.disasm program.mc           # MiniC source
    python -m repro.tools.disasm --benchmark crafty   # a suite benchmark
"""

import argparse

from repro.isa.decoder import DecodeError, decode_full
from repro.isa.eflags import eflags_to_string


def disassemble_image(image, show_eflags=False):
    """Yield formatted disassembly lines for every code section."""
    by_addr = {}
    for name, addr in image.symbols.items():
        by_addr.setdefault(addr, []).append(name)
    for section in image.sections:
        if section.writable:
            continue
        yield "section %s @ 0x%x (%d bytes)" % (
            section.name,
            section.addr,
            len(section.data),
        )
        pc = section.addr
        end = section.addr + len(section.data)
        data = section.data
        while pc < end:
            for symbol in by_addr.get(pc, ()):
                yield "%s:" % symbol
            off = pc - section.addr
            try:
                d = decode_full(data, off, pc=pc)
            except DecodeError:
                yield "  %08x:  %-20s (data)" % (pc, data[off : off + 4].hex(" "))
                pc += 4
                continue
            raw = data[off : off + d.length].hex(" ")
            text = _format(d)
            if show_eflags:
                yield "  %08x:  %-22s %-30s %s" % (
                    pc,
                    raw,
                    text,
                    eflags_to_string(d.eflags),
                )
            else:
                yield "  %08x:  %-22s %s" % (pc, raw, text)
            pc += d.length


def _format(d):
    from repro.isa.opcodes import OP_INFO

    name = OP_INFO[d.opcode].name
    if not d.operands:
        return name
    return "%s %s" % (name, ", ".join(repr(op) for op in d.operands))


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("source", nargs="?", help="MiniC source file")
    parser.add_argument("--benchmark", help="disassemble a suite benchmark")
    parser.add_argument("--eflags", action="store_true", help="show flag effects")
    args = parser.parse_args(argv)

    if args.benchmark:
        from repro.workloads import load_benchmark

        image = load_benchmark(args.benchmark, "test")
    elif args.source:
        from repro.minicc import compile_source

        with open(args.source) as f:
            image = compile_source(f.read())
    else:
        parser.error("provide a source file or --benchmark")
    for line in disassemble_image(image, show_eflags=args.eflags):
        print(line)


if __name__ == "__main__":
    main()
