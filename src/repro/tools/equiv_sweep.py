"""drequiv sweep: every workload x client x engine under full verification.

Usage::

    python -m repro.tools.equiv_sweep                 # whole suite
    python -m repro.tools.equiv_sweep --benchmarks mgrid,mcf --clients all

Each cell runs a benchmark under ``verify_fragments`` +
``verify_equivalence`` and asserts three things:

* the run completes (no VerificationError escapes — a clean client must
  never trip the checker);
* output and exit code match a native run of the same image;
* zero error-severity diagnostics were recorded (warnings — e.g. the
  custom-trace client's assumed return continuations — are reported but
  do not fail the sweep).

Exit status is non-zero on any violation.  This is the clean-run half of
the drequiv contract (no false positives); the chaos harness covers the
other half (no false negatives on seeded faults).
"""

import argparse
import sys
import time

from repro.core import DynamoRIO, RuntimeOptions
from repro.loader import Process
from repro.machine.interp import run_native
from repro.tools.run import CLIENTS
from repro.workloads import all_benchmarks, load_benchmark

DEFAULT_CLIENTS = ("null", "rlr", "inc2add", "ctrace", "ibdisp", "all",
                   "inscount-inline")


def run_cell(image, native, client_name, closure_engine):
    """One sweep cell; returns (ok, detail)."""
    options = RuntimeOptions.with_traces()
    options.verify_fragments = True
    options.verify_equivalence = True
    options.closure_engine = closure_engine
    if client_name == "shepherd":
        from repro.clients import ProgramShepherding

        client = ProgramShepherding(image=image)
    else:
        client = CLIENTS[client_name]()
    runtime = DynamoRIO(Process(image), options=options, client=client)
    try:
        result = runtime.run()
    except Exception as exc:
        return False, "crashed: %s: %s" % (type(exc).__name__, exc)
    problems = []
    if result.output != native.output:
        problems.append("output diverged")
    if result.exit_code != native.exit_code:
        problems.append("exit code diverged")
    errors = [d for d in runtime.verifier_diagnostics if d.is_error]
    warnings = len(runtime.verifier_diagnostics) - len(errors)
    if errors:
        problems.append(
            "%d verifier errors; first:\n%s" % (len(errors), errors[0].format())
        )
    if problems:
        return False, "; ".join(problems)
    return True, "ok (%d warnings)" % warnings


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--benchmarks", help="comma-separated subset (default: whole suite)"
    )
    parser.add_argument(
        "--clients", default=",".join(DEFAULT_CLIENTS),
        help="comma-separated client list",
    )
    parser.add_argument("--scale", default="test")
    parser.add_argument(
        "--engine", default="both", choices=["closure", "tuple", "both"]
    )
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)

    names = (
        args.benchmarks.split(",")
        if args.benchmarks
        else [b.name for b in all_benchmarks()]
    )
    clients = args.clients.split(",")
    engines = {
        "closure": (True,), "tuple": (False,), "both": (True, False),
    }[args.engine]

    runs = failures = 0
    start = time.perf_counter()
    for name in names:
        image = load_benchmark(name, args.scale)
        native = run_native(Process(image))
        for client_name in clients:
            for engine in engines:
                runs += 1
                ok, detail = run_cell(image, native, client_name, engine)
                label = "%-10s %-15s %s" % (
                    name, client_name, "closure" if engine else "tuple"
                )
                if not ok:
                    failures += 1
                    print("FAIL %s: %s" % (label, detail))
                elif args.verbose:
                    print("ok   %s: %s" % (label, detail))
    print(
        "equiv sweep: %d runs, %d failures (%d benchmarks, %.1fs)"
        % (runs, failures, len(names), time.perf_counter() - start)
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
