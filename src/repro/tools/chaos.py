"""Chaos harness: run client x workload x fault matrices under drguard.

Usage::

    python -m repro.tools.chaos --seeds 4 --matrix small
    python -m repro.tools.chaos --seeds 2 --matrix full --verbose

Every run pairs a real client wrapped in a
:class:`~repro.resilience.faultinject.FaultInjectingClient` with a
workload, under ``guard_clients`` + ``cache_consistency`` + fragment
verification, and asserts the robustness contract:

* the run completes (no crash escapes the guard);
* output and exit code are identical to a native (no-runtime) run of
  the same program — the injected client bugs must not perturb the
  application;
* the expected resilience events actually fired (the fault was
  *exercised*, not dodged).

``--runtime`` switches to the drshield matrix: no client at all, the
faults target the *runtime's own* chokepoints (``runtime_raise:<site>``)
or plant errant stores / livelock (see
:class:`~repro.resilience.faultinject.RuntimeFaultPlan`).  The oracle
additionally asserts that the event stream replays exactly onto the
live stats and that the escalation ladder's events (``shield_fault``,
``subsystem_disabled``, ``watchdog_trip``) are *identical* across the
tuple, closure, and chain engines for every cell.

Exit status is non-zero if any run violates the contract.
"""

import argparse

from repro.asm import CodeBuilder, mem
from repro.core import DynamoRIO, RuntimeOptions
from repro.isa.registers import Reg
from repro.loader import Process
from repro.machine.interp import run_native
from repro.minicc import compile_source
from repro.observe.events import replay_stats
from repro.resilience.faultinject import (
    FAULT_KINDS,
    RUNTIME_FAULT_KINDS,
    FaultInjectingClient,
    FaultPlan,
    RuntimeFaultPlan,
)
from repro.tools.run import CLIENTS

# ------------------------------------------------------------------ workloads

LOOP_SRC = """
int main() {
    int i; int acc;
    acc = 0;
    for (i = 0; i < 400; i++) {
        acc = acc + i;
        if (acc > 10000) { acc = acc - 9000; }
    }
    print(acc);
    return 0;
}
"""

INDIRECT_SRC = """
int table[4];

int f0(int x) { return x + 1; }
int f1(int x) { return x * 2; }
int f2(int x) { return x - 3; }
int f3(int x) { return x ^ 21; }

int main() {
    int i; int acc; int f;
    table[0] = &f0;
    table[1] = &f1;
    table[2] = &f2;
    table[3] = &f3;
    acc = 1;
    for (i = 0; i < 300; i++) {
        f = table[i & 3];
        acc = f(acc) & 0xFFFF;
    }
    print(acc);
    return 0;
}
"""

SIGNAL_SRC = """
int ticks;

int on_alarm() {
    ticks++;
    if (ticks < 5) { alarm(200); }
    sigreturn;
    return 0;
}

int churn(int n) {
    int j; int acc;
    acc = n;
    for (j = 0; j < 20; j++) { acc = (acc + j) & 0xFFFF; }
    return acc;
}

int mix(int n) {
    int j; int acc;
    acc = n;
    for (j = 0; j < 20; j++) { acc = (acc ^ j) + 1; }
    return acc & 0xFFFF;
}

int main() {
    int i;
    sighandler(&on_alarm);
    alarm(200);
    i = 0;
    while (ticks < 5) { i = churn(i); i = mix(i); }
    print(ticks);
    return 0;
}
"""


def build_smc_image():
    """Self-modifying workload: iteration 6 patches the immediate of
    the emitting ``mov`` from ``0x1000041`` ('A') to ``0x1000042``
    ('B'), so the output is AAAAAAA then BBBBB (7 + 5).  The high bits
    pin the encoder to the imm32 form, keeping the patched bytes at a
    known offset before ``patch_end``."""
    b = CodeBuilder(base=0x1000)
    b.label("main")
    b.mov(Reg.ESI, 0)
    b.label("loop")
    b.call("fn_emit")
    b.cmp(Reg.ESI, 6)
    b.jnz("skip")
    b.mov(Reg.ECX, b.label_address("patch_end"))
    b.sub(Reg.ECX, 4)
    b.mov(Reg.EDX, 0x1000042)
    b.mov(mem(base=Reg.ECX), Reg.EDX)
    b.label("skip")
    b.add(Reg.ESI, 1)
    b.cmp(Reg.ESI, 12)
    b.jnz("loop")
    b.mov(Reg.EAX, 1)
    b.mov(Reg.EBX, 0)
    b.syscall()
    b.label("fn_emit")
    b.mov(Reg.EBX, 0x1000041)
    b.label("patch_end")
    b.mov(Reg.EAX, 2)
    b.syscall()
    b.ret()
    code, labels = b.assemble()
    patch_at = labels["patch_end"] - 4 - 0x1000
    imm = int.from_bytes(code[patch_at : patch_at + 4], "little")
    assert imm == 0x1000041, "encoder moved the patch site (imm=%#x)" % imm
    return b.image(entry="main")


def workload_images():
    return {
        "loop": compile_source(LOOP_SRC),
        "indirect": compile_source(INDIRECT_SRC),
        "signal": compile_source(SIGNAL_SRC),
        "smc": build_smc_image(),
    }


# ------------------------------------------------------------------- matrices

SMALL_CLIENTS = ("rlr", "inc2add", "ctrace")
FULL_CLIENTS = ("rlr", "inc2add", "ctrace", "ibdisp", "null")

# Fault kind -> workloads that exercise it.  mid_trace_signal and
# mid_fragment_signal need a signal-delivering program; smc_write needs
# the self-modifying one.
def fault_workloads(kind, matrix):
    if kind in ("mid_trace_signal", "mid_fragment_signal"):
        return ("signal",)
    if kind == "smc_write":
        return ("smc",)
    if matrix == "small":
        return ("loop", "indirect")
    return ("loop", "indirect", "signal")


# Event kinds that must appear for each fault kind (the fault actually
# fired) — checked against the observer's aggregate counts.
EXPECTED_EVENTS = {
    "raise_in_hook": ("client_fault", "fragment_bailout"),
    "corrupt_instrlist": ("client_fault", "fragment_bailout"),
    "hook_budget_burn": ("client_fault", "fragment_bailout"),
    "cache_poison": ("client_fault", "fragment_bailout"),
    "mid_trace_signal": ("client_fault", "signal_delivered"),
    "smc_write": ("smc_invalidate",),
    "detach": ("detach",),
    "reattach": ("detach", "reattach"),
    "mid_fragment_signal": ("signal_delivered",),
}

# Kinds exercising the drdetach machinery: run under precise
# interrupts so state translation and mid-fragment delivery are
# actually on the path, not just fragment-boundary rollback.
DETACH_KINDS = ("detach", "reattach", "mid_fragment_signal")


# ------------------------------------------------- drshield matrix (--runtime)

RUNTIME_ENGINES = ("tuple", "closure", "chain")

# Escalation-ladder event kinds that must be byte-identical across the
# three engines for every (fault, workload, seed) cell.
LADDER_EVENT_KINDS = ("shield_fault", "subsystem_disabled", "watchdog_trip")

# Kinds whose chokepoint only runs under cache pressure: give them a
# small cache so evict/unlink are actually invoked in every workload.
PRESSURE_KINDS = ("runtime_raise:evict", "runtime_raise:unlink")


def runtime_fault_workloads(matrix):
    if matrix == "small":
        return ("loop", "indirect")
    return ("loop", "indirect", "signal")


def runtime_engines(fault_kind):
    # The chain chokepoint only exists on the chain engine.
    if fault_kind == "runtime_raise:chain":
        return ("chain",)
    return RUNTIME_ENGINES


def runtime_options(fault_kind, engine):
    options = RuntimeOptions.with_traces()
    options.shield = True
    options.trace_events = True
    options.trace_buffer = None
    options.precise_interrupts = True
    options.trace_threshold = 3
    options.closure_engine = engine != "tuple"
    options.chain_engine = engine == "chain"
    options.chain_threshold = 3
    if fault_kind in PRESSURE_KINDS:
        options.code_cache_limit = 256
    if fault_kind == "runtime_raise:evict":
        options.cache_evict_policy = "fifo"
    return options


def run_runtime_one(image, fault_kind, seed, engine):
    """One drshield run; returns (ok, detail, ladder_event_stream)."""
    native = run_native(Process(image))
    runtime = DynamoRIO(
        Process(image), options=runtime_options(fault_kind, engine)
    )
    # Trace finalization only runs a handful of times in these short
    # workloads, so the plan must start at the first one to be
    # guaranteed to fire; the period still varies with the seed.
    start = 1 if fault_kind == "runtime_raise:trace" else None
    runtime.rguard.plan = RuntimeFaultPlan(fault_kind, seed, start=start)
    try:
        result = runtime.run()
    except Exception as exc:  # contract: nothing escapes the ladder
        return False, "crashed: %s: %s" % (type(exc).__name__, exc), None

    problems = []
    if result.output != native.output:
        problems.append(
            "output diverged (%r != native %r)"
            % (result.output[:32], native.output[:32])
        )
    if result.exit_code != native.exit_code:
        problems.append(
            "exit code diverged (%s != native %s)"
            % (result.exit_code, native.exit_code)
        )
    if runtime.rguard.injected == 0:
        problems.append("runtime fault plan never fired")
    stats = runtime.stats.as_dict()
    if replay_stats(runtime.observer.events()) != stats:
        problems.append("event stream does not replay onto live stats")
    if fault_kind == "livelock":
        # Livelock produces no internal exception, so no shield_fault;
        # the watchdog must have broken the loop instead.
        if not stats["watchdog_trips"]:
            problems.append("livelock never tripped the watchdog")
    elif not stats["shield_faults"]:
        problems.append("fault injected but no shield_fault recorded")
    ladder = [
        (ev.kind, ev.tag, ev.data)
        for ev in runtime.observer.events()
        if ev.kind in LADDER_EVENT_KINDS
    ]
    if problems:
        return False, "; ".join(problems), ladder
    return True, "ok (%d injected, %d shield faults, %d ladder events)" % (
        runtime.rguard.injected,
        stats["shield_faults"],
        len(ladder),
    ), ladder


def run_runtime_matrix(args, images):
    kinds = (args.fault,) if args.fault else RUNTIME_FAULT_KINDS
    runs = failures = 0
    for fault_kind in kinds:
        for workload in runtime_fault_workloads(args.matrix):
            for seed in range(args.seeds):
                streams = []
                for engine in runtime_engines(fault_kind):
                    runs += 1
                    ok, detail, ladder = run_runtime_one(
                        images[workload], fault_kind, seed, engine
                    )
                    label = "%-22s %-8s seed=%d %-7s" % (
                        fault_kind, workload, seed, engine,
                    )
                    if not ok:
                        failures += 1
                        print("FAIL %s: %s" % (label, detail))
                    elif args.verbose:
                        print("ok   %s: %s" % (label, detail))
                    if ok and ladder is not None:
                        streams.append((engine, ladder))
                # The ladder is part of the simulated result: every
                # engine must have climbed exactly the same rungs.
                for engine, ladder in streams[1:]:
                    if ladder != streams[0][1]:
                        failures += 1
                        print(
                            "FAIL %-22s %-8s seed=%d: ladder events "
                            "diverge between %s and %s engines"
                            % (
                                fault_kind, workload, seed,
                                streams[0][0], engine,
                            )
                        )
    print(
        "chaos --runtime: %d runs, %d failures (%s matrix, %d seeds)"
        % (runs, failures, args.matrix, args.seeds)
    )
    return 1 if failures else 0


def run_one(image, client_name, fault_kind, seed, closure_engine=True):
    """One chaos run; returns (ok, detail_string, result)."""
    native = run_native(Process(image))

    options = RuntimeOptions.with_traces()
    options.guard_clients = True
    options.client_fault_limit = 3
    options.client_hook_budget = 200000
    options.cache_consistency = True
    options.verify_fragments = True
    options.verify_equivalence = True
    options.trace_events = True
    options.trace_buffer = None
    options.closure_engine = closure_engine
    if fault_kind in ("mid_trace_signal", "smc_write"):
        # Make traces (and therefore trace hooks / stitched-span
        # invalidation) happen early in these short programs.
        options.trace_threshold = 3
    if fault_kind in DETACH_KINDS:
        options.precise_interrupts = True

    plan = FaultPlan(fault_kind, seed)
    client = FaultInjectingClient(plan, inner=CLIENTS[client_name]())
    runtime = DynamoRIO(Process(image), options=options, client=client)
    try:
        result = runtime.run()
    except Exception as exc:  # contract: nothing escapes the guard
        return False, "crashed: %s: %s" % (type(exc).__name__, exc), None

    problems = []
    if result.output != native.output:
        problems.append(
            "output diverged (%r != native %r)"
            % (result.output[:32], native.output[:32])
        )
    if result.exit_code != native.exit_code:
        problems.append(
            "exit code diverged (%s != native %s)"
            % (result.exit_code, native.exit_code)
        )
    counts = runtime.observer.counts
    for kind in EXPECTED_EVENTS[fault_kind]:
        if not counts.get(kind):
            problems.append("expected event %r never fired" % kind)
    if (
        fault_kind not in ("smc_write", "mid_fragment_signal")
        and client.injected == 0
    ):
        problems.append("fault plan never fired")
    if fault_kind == "mid_fragment_signal":
        # The point of the kind: at least one alarm must have been
        # taken *inside* a fragment via the translation table, not at
        # a fragment boundary.
        mid = sum(
            1
            for ev in runtime.observer.events()
            if ev.kind == "signal_delivered" and ev.data.get("mid_fragment")
        )
        if not mid:
            problems.append("no mid-fragment signal delivery")
    if fault_kind in ("corrupt_instrlist", "cache_poison") and client.injected:
        # drequiv negative control: these faults corrupt instruction
        # lists semantically, so beyond the guard's dynamic bailout the
        # equivalence rule must have flagged them *statically* at emit.
        equiv_errors = [
            d
            for d in runtime.verifier_diagnostics
            if d.is_error and d.rule == "equivalence"
        ]
        if not equiv_errors:
            problems.append(
                "injected %s was never flagged by the equivalence rule"
                % fault_kind
            )
    if problems:
        return False, "; ".join(problems), result
    return True, "ok (%d faults, %d events)" % (
        runtime.stats.client_faults,
        runtime.observer.total_emitted,
    ), result


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seeds", type=int, default=4, help="seeds per cell")
    parser.add_argument(
        "--matrix", default="small", choices=["small", "full"],
        help="small: 3 clients, 2 workloads/fault; full: 5 clients, both engines",
    )
    parser.add_argument(
        "--fault",
        choices=FAULT_KINDS + RUNTIME_FAULT_KINDS,
        help="restrict to one fault kind",
    )
    parser.add_argument(
        "--runtime", action="store_true",
        help="run the drshield runtime-fault matrix (no client; faults "
        "target the runtime's own chokepoints) instead of the client matrix",
    )
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)

    if args.fault:
        pool = RUNTIME_FAULT_KINDS if args.runtime else FAULT_KINDS
        if args.fault not in pool:
            parser.error(
                "--fault %s does not belong to the %s matrix"
                % (args.fault, "runtime" if args.runtime else "client")
            )

    images = workload_images()
    if args.runtime:
        return run_runtime_matrix(args, images)
    clients = SMALL_CLIENTS if args.matrix == "small" else FULL_CLIENTS
    engines = (True,) if args.matrix == "small" else (True, False)
    kinds = (args.fault,) if args.fault else FAULT_KINDS

    runs = failures = 0
    for fault_kind in kinds:
        for workload in fault_workloads(fault_kind, args.matrix):
            for client_name in clients:
                for seed in range(args.seeds):
                    for engine in engines:
                        runs += 1
                        ok, detail, _ = run_one(
                            images[workload], client_name, fault_kind,
                            seed, closure_engine=engine,
                        )
                        label = "%-16s %-8s %-7s seed=%d %s" % (
                            fault_kind, workload, client_name, seed,
                            "closure" if engine else "tuple",
                        )
                        if not ok:
                            failures += 1
                            print("FAIL %s: %s" % (label, detail))
                        elif args.verbose:
                            print("ok   %s: %s" % (label, detail))

    print(
        "chaos: %d runs, %d failures (%s matrix, %d seeds)"
        % (runs, failures, args.matrix, args.seeds)
    )
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
