"""Operand kinds for RIO-32 instructions.

Operands are immutable value objects; mutating an instruction's operand
list therefore means *replacing* an operand, which is the event that
invalidates an ``Instr``'s raw bits and moves it to Level 4 (see
``repro.ir.instr``).

Four kinds exist:

``RegOperand``
    One of the eight GPRs.
``ImmOperand``
    An immediate constant with an encoding size hint (1 or 4 bytes).
``MemOperand``
    ``[base + index*scale + disp]`` with an access size (1, 2 or 4 bytes),
    mirroring IA-32 ModRM/SIB addressing.
``PcOperand``
    A code address, used as the target of direct branches.  Encoded as a
    displacement relative to the end of the instruction.
"""

from repro.isa.registers import Reg, REG_NAMES


class Operand:
    """Base class for all operand kinds."""

    __slots__ = ()

    def is_reg(self):
        return isinstance(self, RegOperand)

    def is_imm(self):
        return isinstance(self, ImmOperand)

    def is_mem(self):
        return isinstance(self, MemOperand)

    def is_pc(self):
        return isinstance(self, PcOperand)

    def uses_reg(self, reg):
        """Whether this operand reads the given register to compute itself.

        For a register operand this is identity; for a memory operand it
        covers the base and index registers (address computation), not the
        memory contents.
        """
        return False


class RegOperand(Operand):
    """A direct register operand."""

    __slots__ = ("reg",)

    def __init__(self, reg):
        object.__setattr__(self, "reg", Reg(reg))

    def __setattr__(self, name, value):
        raise AttributeError("operands are immutable; build a new one")

    def uses_reg(self, reg):
        return self.reg == reg

    def __eq__(self, other):
        return isinstance(other, RegOperand) and self.reg == other.reg

    def __hash__(self):
        return hash(("reg", self.reg))

    def __repr__(self):
        return "%%%s" % REG_NAMES[self.reg]


class ImmOperand(Operand):
    """An immediate constant.

    ``size`` is the *encoding* size in bytes (1 or 4).  The value is kept
    as a Python int; signed interpretation happens at encode/execute time.
    """

    __slots__ = ("value", "size")

    def __init__(self, value, size=4):
        if size not in (1, 4):
            raise ValueError("immediate size must be 1 or 4, got %r" % (size,))
        object.__setattr__(self, "value", int(value))
        object.__setattr__(self, "size", size)

    def __setattr__(self, name, value):
        raise AttributeError("operands are immutable; build a new one")

    def fits_in_byte(self):
        """Whether the value is encodable as a sign-extended 8-bit imm."""
        return -128 <= _as_signed32(self.value) <= 127

    def __eq__(self, other):
        return (
            isinstance(other, ImmOperand)
            and self.value == other.value
            and self.size == other.size
        )

    def __hash__(self):
        return hash(("imm", self.value, self.size))

    def __repr__(self):
        return "$0x%x" % (self.value & 0xFFFFFFFF)


class MemOperand(Operand):
    """A memory reference ``[base + index*scale + disp]``.

    ``size`` is the access width in bytes (1, 2 or 4); sub-word loads are
    what ``movzx``/``movsx`` consume.  ``base`` and ``index`` are ``Reg``
    or ``None``; ``scale`` is 1, 2, 4 or 8.
    """

    __slots__ = ("base", "index", "scale", "disp", "size")

    def __init__(self, base=None, index=None, scale=1, disp=0, size=4):
        if scale not in (1, 2, 4, 8):
            raise ValueError("scale must be 1, 2, 4 or 8, got %r" % (scale,))
        if size not in (1, 2, 4):
            raise ValueError("access size must be 1, 2 or 4, got %r" % (size,))
        if index is not None and Reg(index) == Reg.ESP:
            raise ValueError("esp cannot be an index register")
        object.__setattr__(self, "base", None if base is None else Reg(base))
        object.__setattr__(self, "index", None if index is None else Reg(index))
        # Scale is meaningless without an index; normalize so structurally
        # identical operands compare equal.
        object.__setattr__(self, "scale", scale if index is not None else 1)
        object.__setattr__(self, "disp", int(disp))
        object.__setattr__(self, "size", size)

    def __setattr__(self, name, value):
        raise AttributeError("operands are immutable; build a new one")

    def uses_reg(self, reg):
        return self.base == reg or self.index == reg

    def address_registers(self):
        """Registers read to form the effective address."""
        regs = []
        if self.base is not None:
            regs.append(self.base)
        if self.index is not None:
            regs.append(self.index)
        return regs

    def __eq__(self, other):
        return (
            isinstance(other, MemOperand)
            and self.base == other.base
            and self.index == other.index
            and self.scale == other.scale
            and self.disp == other.disp
            and self.size == other.size
        )

    def __hash__(self):
        return hash(("mem", self.base, self.index, self.scale, self.disp, self.size))

    def __repr__(self):
        inner = []
        if self.base is not None:
            inner.append("%%%s" % REG_NAMES[self.base])
        if self.index is not None:
            inner.append("%%%s,%d" % (REG_NAMES[self.index], self.scale))
        prefix = "0x%x" % self.disp if self.disp else ""
        return "%s(%s)" % (prefix, ",".join(inner))


class PcOperand(Operand):
    """An absolute code address, the target of a direct control transfer."""

    __slots__ = ("pc",)

    def __init__(self, pc):
        object.__setattr__(self, "pc", int(pc) & 0xFFFFFFFF)

    def __setattr__(self, name, value):
        raise AttributeError("operands are immutable; build a new one")

    def __eq__(self, other):
        return isinstance(other, PcOperand) and self.pc == other.pc

    def __hash__(self):
        return hash(("pc", self.pc))

    def __repr__(self):
        return "$0x%08x" % self.pc


def _as_signed32(value):
    value &= 0xFFFFFFFF
    return value - 0x100000000 if value >= 0x80000000 else value


# Convenience constructors matching the paper's OPND_CREATE_* style.
def OPND_REG(reg):
    return RegOperand(reg)


def OPND_IMM8(value):
    return ImmOperand(value, size=1)


def OPND_IMM32(value):
    return ImmOperand(value, size=4)


def OPND_MEM(base=None, index=None, scale=1, disp=0, size=4):
    return MemOperand(base=base, index=index, scale=scale, disp=disp, size=size)


def OPND_PC(pc):
    return PcOperand(pc)
