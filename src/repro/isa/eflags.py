"""Condition-code (eflags) masks for RIO-32.

Following the paper, every opcode is tagged with the set of flags it
*reads* and the set it *writes*.  The six arithmetic flags mirror IA-32:

========  ===========================================
``CF``    carry (unsigned overflow)
``PF``    parity of the low result byte
``AF``    auxiliary carry (BCD half-carry)
``ZF``    zero
``SF``    sign (high bit of result)
``OF``    signed overflow
========  ===========================================

Read and write effects are packed into one integer bitmask so a client
can test hazards with single ``&`` operations — this is exactly the
"Level 2" information DynamoRIO decodes eagerly because it is the common
question every code transformation asks.
"""

# Flag bit positions within the eflags register value itself.
CF = 1 << 0
PF = 1 << 2
AF = 1 << 4
ZF = 1 << 6
SF = 1 << 7
OF = 1 << 11

FLAG_BITS = (CF, PF, AF, ZF, SF, OF)
FLAG_NAMES = {CF: "CF", PF: "PF", AF: "AF", ZF: "ZF", SF: "SF", OF: "OF"}

# Read/write effect masks (independent from the flag bit positions).
EFLAGS_READ_CF = 1 << 0
EFLAGS_READ_PF = 1 << 1
EFLAGS_READ_AF = 1 << 2
EFLAGS_READ_ZF = 1 << 3
EFLAGS_READ_SF = 1 << 4
EFLAGS_READ_OF = 1 << 5
EFLAGS_WRITE_CF = 1 << 6
EFLAGS_WRITE_PF = 1 << 7
EFLAGS_WRITE_AF = 1 << 8
EFLAGS_WRITE_ZF = 1 << 9
EFLAGS_WRITE_SF = 1 << 10
EFLAGS_WRITE_OF = 1 << 11

EFLAGS_READ_ALL = (
    EFLAGS_READ_CF
    | EFLAGS_READ_PF
    | EFLAGS_READ_AF
    | EFLAGS_READ_ZF
    | EFLAGS_READ_SF
    | EFLAGS_READ_OF
)
EFLAGS_WRITE_ALL = (
    EFLAGS_WRITE_CF
    | EFLAGS_WRITE_PF
    | EFLAGS_WRITE_AF
    | EFLAGS_WRITE_ZF
    | EFLAGS_WRITE_SF
    | EFLAGS_WRITE_OF
)

# "WCPAZSO" in the paper's Figure 2: writes all six arithmetic flags.
EFLAGS_WRITE_ARITH = EFLAGS_WRITE_ALL
EFLAGS_READ_ARITH = EFLAGS_READ_ALL

# Map between read and write halves: write mask for a given read mask.
_READ_TO_WRITE_SHIFT = 6


def reads_to_writes(read_mask):
    """Convert a read-effects mask into the corresponding write mask."""
    return (read_mask & EFLAGS_READ_ALL) << _READ_TO_WRITE_SHIFT


def writes_to_reads(write_mask):
    """Convert a write-effects mask into the corresponding read mask."""
    return (write_mask & EFLAGS_WRITE_ALL) >> _READ_TO_WRITE_SHIFT


_EFFECT_LETTERS = (
    (EFLAGS_WRITE_CF, EFLAGS_READ_CF, "C"),
    (EFLAGS_WRITE_PF, EFLAGS_READ_PF, "P"),
    (EFLAGS_WRITE_AF, EFLAGS_READ_AF, "A"),
    (EFLAGS_WRITE_ZF, EFLAGS_READ_ZF, "Z"),
    (EFLAGS_WRITE_SF, EFLAGS_READ_SF, "S"),
    (EFLAGS_WRITE_OF, EFLAGS_READ_OF, "O"),
)


def eflags_to_string(effects):
    """Render an effects mask in the paper's Figure 2 notation.

    Writes are listed after a ``W``, reads after an ``R``; an instruction
    with no flag effects renders as ``"-"``.  Example: ``cmp`` is
    ``"WCPAZSO"`` and ``jnl`` is ``"RSO"``.
    """
    writes = "".join(letter for w, _, letter in _EFFECT_LETTERS if effects & w)
    reads = "".join(letter for _, r, letter in _EFFECT_LETTERS if effects & r)
    parts = []
    if writes:
        parts.append("W" + writes)
    if reads:
        parts.append("R" + reads)
    return " ".join(parts) if parts else "-"
