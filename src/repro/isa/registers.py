"""General-purpose register file of RIO-32.

RIO-32 has eight 32-bit general-purpose registers with the IA-32 names
and encoding numbers.  ``ESP`` is the stack pointer (implicitly used by
``push``/``pop``/``call``/``ret``) and ``EBP`` is conventionally the frame
pointer, which is what makes register pressure — and therefore redundant
stack loads — realistic.
"""

from enum import IntEnum


class Reg(IntEnum):
    """Register numbers; the values are the 3-bit encoding fields."""

    EAX = 0
    ECX = 1
    EDX = 2
    EBX = 3
    ESP = 4
    EBP = 5
    ESI = 6
    EDI = 7


NUM_REGS = 8

REG_NAMES = {
    Reg.EAX: "eax",
    Reg.ECX: "ecx",
    Reg.EDX: "edx",
    Reg.EBX: "ebx",
    Reg.ESP: "esp",
    Reg.EBP: "ebp",
    Reg.ESI: "esi",
    Reg.EDI: "edi",
}

_NAME_TO_REG = {name: reg for reg, name in REG_NAMES.items()}


def reg_from_name(name):
    """Look up a register by its assembly name (e.g. ``"eax"``).

    Accepts an optional ``%`` prefix, as used in AT&T-style listings.
    Raises ``KeyError`` for unknown names.
    """
    return _NAME_TO_REG[name.lstrip("%").lower()]
