"""The RIO-32 opcode table.

Every opcode carries:

* its eflags read/write effects (the "Level 2" information of the paper);
* its control-transfer classification (direct/indirect, call/return,
  conditional) — the properties the runtime's basic-block builder, linker
  and trace builder dispatch on;
* an *operand shape* describing how explicit operands map onto the full
  source/destination lists (including implicit operands such as ``esp``
  for ``push``), used by ``repro.ir.create``;
* a *cost class* consumed by the machine cost model.

The table is deliberately IA-32-flavored: ``inc``/``dec`` do **not**
write CF (the hazard exploited by the strength-reduction client), ``not``
writes no flags at all, and conditional branches read exactly the flags
their IA-32 counterparts read.
"""

from enum import IntEnum

from repro.isa.eflags import (
    EFLAGS_READ_CF,
    EFLAGS_READ_ZF,
    EFLAGS_READ_SF,
    EFLAGS_READ_OF,
    EFLAGS_WRITE_ALL,
    EFLAGS_WRITE_CF,
)


class Opcode(IntEnum):
    """All RIO-32 opcodes."""

    # Data movement
    MOV = 1
    MOVB_STORE = 2  # store low byte of a register to memory
    MOVZX = 3
    MOVSX = 4
    LEA = 5
    XCHG = 6
    PUSH = 7
    POP = 8
    # Integer arithmetic / logic
    ADD = 10
    SUB = 11
    INC = 12
    DEC = 13
    NEG = 14
    NOT = 15
    AND = 16
    OR = 17
    XOR = 18
    CMP = 19
    TEST = 20
    SHL = 21
    SHR = 22
    SAR = 23
    IMUL = 24
    DIV = 25
    # Fixed-point "floating point" (higher latency, no flag effects)
    FLD = 30
    FST = 31
    FADD = 32
    FSUB = 33
    FMUL = 34
    FDIV = 35
    # Control transfer
    JMP = 40
    JMP_IND = 41
    CALL = 42
    CALL_IND = 43
    RET = 44
    IRET = 45  # return from signal handler: pops pc, then eflags
    JO = 50
    JNO = 51
    JB = 52
    JNB = 53
    JZ = 54
    JNZ = 55
    JBE = 56
    JNBE = 57
    JS = 58
    JNS = 59
    JL = 60
    JNL = 61
    JLE = 62
    JNLE = 63
    # Misc
    NOP = 70
    HALT = 71
    SYSCALL = 72
    LABEL = 73  # pseudo-instruction: never encoded, used by builders


# Condition-code field values (IA-32 "tttn") for the Jcc family.
JCC_CONDITION = {
    Opcode.JO: 0x0,
    Opcode.JNO: 0x1,
    Opcode.JB: 0x2,
    Opcode.JNB: 0x3,
    Opcode.JZ: 0x4,
    Opcode.JNZ: 0x5,
    Opcode.JBE: 0x6,
    Opcode.JNBE: 0x7,
    Opcode.JS: 0x8,
    Opcode.JNS: 0x9,
    Opcode.JL: 0xC,
    Opcode.JNL: 0xD,
    Opcode.JLE: 0xE,
    Opcode.JNLE: 0xF,
}

CONDITION_TO_JCC = {cc: op for op, cc in JCC_CONDITION.items()}

# Opposite-condition map, used to invert branches (e.g. by the trace
# builder when it keeps fall-through on-trace).
JCC_OPPOSITE = {
    Opcode.JO: Opcode.JNO,
    Opcode.JNO: Opcode.JO,
    Opcode.JB: Opcode.JNB,
    Opcode.JNB: Opcode.JB,
    Opcode.JZ: Opcode.JNZ,
    Opcode.JNZ: Opcode.JZ,
    Opcode.JBE: Opcode.JNBE,
    Opcode.JNBE: Opcode.JBE,
    Opcode.JS: Opcode.JNS,
    Opcode.JNS: Opcode.JS,
    Opcode.JL: Opcode.JNL,
    Opcode.JNL: Opcode.JL,
    Opcode.JLE: Opcode.JNLE,
    Opcode.JNLE: Opcode.JLE,
}


class OpcodeInfo:
    """Static properties of one opcode."""

    __slots__ = (
        "opcode",
        "name",
        "eflags",
        "shape",
        "cost_class",
        "is_cti",
        "is_cond_branch",
        "is_call",
        "is_ret",
        "is_indirect",
        "is_fp",
        "condition",
    )

    def __init__(
        self,
        opcode,
        name,
        eflags,
        shape,
        cost_class,
        is_cti=False,
        is_cond_branch=False,
        is_call=False,
        is_ret=False,
        is_indirect=False,
        is_fp=False,
        condition=None,
    ):
        self.opcode = opcode
        self.name = name
        self.eflags = eflags
        self.shape = shape
        self.cost_class = cost_class
        self.is_cti = is_cti
        self.is_cond_branch = is_cond_branch
        self.is_call = is_call
        self.is_ret = is_ret
        self.is_indirect = is_indirect
        self.is_fp = is_fp
        self.condition = condition

    def __repr__(self):
        return "<OpcodeInfo %s>" % self.name


_W = EFLAGS_WRITE_ALL
# inc/dec write everything *except* CF — the paper's Section 4.2 hazard.
_W_NO_CF = EFLAGS_WRITE_ALL & ~EFLAGS_WRITE_CF

_JCC_READS = {
    Opcode.JO: EFLAGS_READ_OF,
    Opcode.JNO: EFLAGS_READ_OF,
    Opcode.JB: EFLAGS_READ_CF,
    Opcode.JNB: EFLAGS_READ_CF,
    Opcode.JZ: EFLAGS_READ_ZF,
    Opcode.JNZ: EFLAGS_READ_ZF,
    Opcode.JBE: EFLAGS_READ_CF | EFLAGS_READ_ZF,
    Opcode.JNBE: EFLAGS_READ_CF | EFLAGS_READ_ZF,
    Opcode.JS: EFLAGS_READ_SF,
    Opcode.JNS: EFLAGS_READ_SF,
    Opcode.JL: EFLAGS_READ_SF | EFLAGS_READ_OF,
    Opcode.JNL: EFLAGS_READ_SF | EFLAGS_READ_OF,
    Opcode.JLE: EFLAGS_READ_SF | EFLAGS_READ_OF | EFLAGS_READ_ZF,
    Opcode.JNLE: EFLAGS_READ_SF | EFLAGS_READ_OF | EFLAGS_READ_ZF,
}


def _build_table():
    table = {}

    def op(opcode, name, eflags, shape, cost_class, **kinds):
        table[opcode] = OpcodeInfo(opcode, name, eflags, shape, cost_class, **kinds)

    # Data movement
    op(Opcode.MOV, "mov", 0, "mov", "mov")
    op(Opcode.MOVB_STORE, "movb", 0, "mov", "store")
    op(Opcode.MOVZX, "movzx", 0, "mov", "load")
    op(Opcode.MOVSX, "movsx", 0, "mov", "load")
    op(Opcode.LEA, "lea", 0, "lea", "alu")
    op(Opcode.XCHG, "xchg", 0, "xchg", "xchg")
    op(Opcode.PUSH, "push", 0, "push", "push")
    op(Opcode.POP, "pop", 0, "pop", "pop")
    # Arithmetic / logic
    op(Opcode.ADD, "add", _W, "binary", "alu")
    op(Opcode.SUB, "sub", _W, "binary", "alu")
    op(Opcode.INC, "inc", _W_NO_CF, "unary", "incdec")
    op(Opcode.DEC, "dec", _W_NO_CF, "unary", "incdec")
    op(Opcode.NEG, "neg", _W, "unary", "alu")
    op(Opcode.NOT, "not", 0, "unary", "alu")
    op(Opcode.AND, "and", _W, "binary", "alu")
    op(Opcode.OR, "or", _W, "binary", "alu")
    op(Opcode.XOR, "xor", _W, "binary", "alu")
    op(Opcode.CMP, "cmp", _W, "compare", "alu")
    op(Opcode.TEST, "test", _W, "compare", "alu")
    op(Opcode.SHL, "shl", _W, "shift", "shift")
    op(Opcode.SHR, "shr", _W, "shift", "shift")
    op(Opcode.SAR, "sar", _W, "shift", "shift")
    op(Opcode.IMUL, "imul", _W, "binary", "mul")
    op(Opcode.DIV, "div", _W, "div", "div")
    # Fixed-point FP
    op(Opcode.FLD, "fld", 0, "mov", "fload", is_fp=True)
    op(Opcode.FST, "fst", 0, "mov", "fstore", is_fp=True)
    op(Opcode.FADD, "fadd", 0, "binary", "fadd", is_fp=True)
    op(Opcode.FSUB, "fsub", 0, "binary", "fadd", is_fp=True)
    op(Opcode.FMUL, "fmul", 0, "binary", "fmul", is_fp=True)
    op(Opcode.FDIV, "fdiv", 0, "binary", "fdiv", is_fp=True)
    # Control transfer
    op(Opcode.JMP, "jmp", 0, "branch", "jmp", is_cti=True)
    op(
        Opcode.JMP_IND,
        "jmp*",
        0,
        "branch",
        "jmp_ind",
        is_cti=True,
        is_indirect=True,
    )
    op(Opcode.CALL, "call", 0, "call", "call", is_cti=True, is_call=True)
    op(
        Opcode.CALL_IND,
        "call*",
        0,
        "call",
        "call_ind",
        is_cti=True,
        is_call=True,
        is_indirect=True,
    )
    op(
        Opcode.RET,
        "ret",
        0,
        "ret",
        "ret",
        is_cti=True,
        is_ret=True,
        is_indirect=True,
    )
    # iret writes all flags (it restores them from the stack); it is an
    # indirect CTI but *not* a ret for client purposes (a client must
    # not remove it the way CustomTraces removes returns).
    op(
        Opcode.IRET,
        "iret",
        _W,
        "ret",
        "ret",
        is_cti=True,
        is_indirect=True,
    )
    for jcc, cond in JCC_CONDITION.items():
        op(
            jcc,
            "j" + jcc.name[1:].lower(),
            _JCC_READS[jcc],
            "branch",
            "jcc",
            is_cti=True,
            is_cond_branch=True,
            condition=cond,
        )
    # Misc
    op(Opcode.NOP, "nop", 0, "none", "nop")
    op(Opcode.HALT, "hlt", 0, "none", "halt")
    op(Opcode.SYSCALL, "syscall", _W, "none", "syscall")
    op(Opcode.LABEL, "<label>", 0, "none", "nop")
    return table


OP_INFO = _build_table()


def opcode_info(opcode):
    """Return the :class:`OpcodeInfo` for an opcode."""
    return OP_INFO[opcode]


def opcode_name(opcode):
    return OP_INFO[opcode].name


_NAME_TO_OPCODE = {info.name: opc for opc, info in OP_INFO.items()}


def opcode_from_name(name):
    """Look up an opcode by its assembly mnemonic."""
    return _NAME_TO_OPCODE[name.lower()]
