"""RIO-32 multi-level decoder.

Three entry points mirror the paper's decoding strategies:

:func:`decode_boundary`
    Find the instruction's length only (Levels 0/1).  Even this requires
    parsing prefixes, the opcode byte(s) and — for ModRM forms — the
    addressing-mode byte, because RIO-32 (like IA-32) is variable length.
:func:`decode_opcode`
    Resolve the opcode and its eflags effects (Level 2); group opcodes
    need the ModRM /digit for this.
:func:`decode_full`
    Produce the explicit operand list (Levels 3/4).

All three take a ``bytes``-like code buffer and an offset, and return the
instruction length alongside their payload so callers can walk a stream.
"""

from collections import namedtuple

from repro.isa.operands import RegOperand, ImmOperand, MemOperand, PcOperand
from repro.isa.opcodes import OP_INFO
from repro.isa.templates import (
    DECODE_ONE_BYTE,
    DECODE_TWO_BYTE,
    PREFIXES,
)


class DecodeError(Exception):
    """The byte stream is not a valid RIO-32 instruction."""


DecodedInstr = namedtuple(
    "DecodedInstr", ["opcode", "operands", "prefixes", "length", "eflags"]
)


def _read_u8(code, i):
    try:
        return code[i]
    except IndexError:
        raise DecodeError("truncated instruction at offset %d" % i)


def _read_s8(code, i):
    b = _read_u8(code, i)
    return b - 0x100 if b >= 0x80 else b


def _read_u32(code, i):
    chunk = bytes(code[i : i + 4])
    if len(chunk) != 4:
        raise DecodeError("truncated instruction at offset %d" % i)
    return int.from_bytes(chunk, "little")


def _read_s32(code, i):
    v = _read_u32(code, i)
    return v - 0x100000000 if v >= 0x80000000 else v


def _scan_prefixes(code, offset):
    i = offset
    prefixes = []
    while _read_u8(code, i) in PREFIXES:
        prefixes.append(code[i])
        i += 1
        if i - offset > 4:
            raise DecodeError("too many prefixes at offset %d" % offset)
    return bytes(prefixes), i


def _lookup(code, i):
    """Resolve opcode byte(s) to a template or group dict.

    Returns ``(entry, opbase, next_index)`` where ``opbase`` is the value
    of the final opcode byte (needed for register-in-opcode forms).
    """
    b0 = _read_u8(code, i)
    if b0 == 0x0F:
        b1 = _read_u8(code, i + 1)
        entry = DECODE_TWO_BYTE.get(b1)
        if entry is None:
            raise DecodeError("unknown opcode 0f %02x at offset %d" % (b1, i))
        return entry, b1, i + 2
    entry = DECODE_ONE_BYTE.get(b0)
    if entry is None:
        raise DecodeError("unknown opcode %02x at offset %d" % (b0, i))
    return entry, b0, i + 1


def _modrm_length(code, i):
    """Length of ModRM + SIB + displacement starting at ``i``."""
    modrm = _read_u8(code, i)
    mod = modrm >> 6
    rm = modrm & 0b111
    length = 1
    if mod == 0b11:
        return length
    has_sib = rm == 0b100
    if has_sib:
        length += 1
        sib_base = _read_u8(code, i + 1) & 0b111
        if mod == 0b00 and sib_base == 0b101:
            return length + 4
    if mod == 0b00 and not has_sib and rm == 0b101:
        return length + 4
    if mod == 0b01:
        return length + 1
    if mod == 0b10:
        return length + 4
    return length


def _resolve_group(entry, code, modrm_index):
    """For group opcodes, pick the template by the ModRM /digit."""
    if not isinstance(entry, dict):
        return entry
    modrm = _read_u8(code, modrm_index)
    digit = (modrm >> 3) & 0b111
    tmpl = entry.get(digit)
    if tmpl is None:
        raise DecodeError("invalid /digit %d at offset %d" % (digit, modrm_index))
    return tmpl


_FORM_TAIL = {
    # immediate / displacement bytes that follow the ModRM (if any)
    "none": 0,
    "o_r": 0,
    "o_r_i32": 4,
    "m": 0,
    "m_i8": 1,
    "m_i32": 4,
    "m_cl": 0,
    "rm": 0,
    "mr": 0,
    "rel8": 1,
    "rel32": 4,
    "i8": 1,
    "i32": 4,
}

_MODRM_FORMS = frozenset(("m", "m_i8", "m_i32", "m_cl", "rm", "mr"))


def _parse_shape(code, offset):
    """Shared fast path: prefixes, opcode bytes, template, total length.

    Returns ``(tmpl, opbase, prefixes, body_index, length)`` where
    ``body_index`` points just past the opcode bytes.
    """
    prefixes, i = _scan_prefixes(code, offset)
    entry, opbase, body = _lookup(code, i)
    tmpl = _resolve_group(entry, code, body)
    length = body - offset
    if tmpl.form in _MODRM_FORMS:
        length += _modrm_length(code, body)
    length += _FORM_TAIL[tmpl.form]
    return tmpl, opbase, prefixes, body, offset + length


def decode_boundary(code, offset):
    """Return the length in bytes of the instruction at ``offset``."""
    _tmpl, _opbase, _prefixes, _body, end = _parse_shape(code, offset)
    return end - offset


def decode_opcode(code, offset):
    """Level-2 decode: ``(opcode, eflags_effects, length)``."""
    tmpl, _opbase, _prefixes, _body, end = _parse_shape(code, offset)
    info = OP_INFO[tmpl.opcode]
    return tmpl.opcode, info.eflags, end - offset


def _decode_modrm(code, i, mem_size):
    """Decode a ModRM r/m operand.  Returns ``(operand, reg_field, next_i)``."""
    modrm = _read_u8(code, i)
    mod = modrm >> 6
    reg_field = (modrm >> 3) & 0b111
    rm = modrm & 0b111
    i += 1
    if mod == 0b11:
        return RegOperand(rm), reg_field, i

    base = index = None
    scale = 1
    if rm == 0b100:
        sib = _read_u8(code, i)
        i += 1
        scale = 1 << (sib >> 6)
        index_bits = (sib >> 3) & 0b111
        base_bits = sib & 0b111
        if index_bits != 0b100:
            index = index_bits
        if mod == 0b00 and base_bits == 0b101:
            base = None
            disp = _read_s32(code, i)
            i += 4
            return (
                MemOperand(base=base, index=index, scale=scale, disp=disp, size=mem_size),
                reg_field,
                i,
            )
        base = base_bits
    elif mod == 0b00 and rm == 0b101:
        disp = _read_s32(code, i)
        i += 4
        return MemOperand(disp=disp, size=mem_size), reg_field, i
    else:
        base = rm

    disp = 0
    if mod == 0b01:
        disp = _read_s8(code, i)
        i += 1
    elif mod == 0b10:
        disp = _read_s32(code, i)
        i += 4
    return (
        MemOperand(base=base, index=index, scale=scale, disp=disp, size=mem_size),
        reg_field,
        i,
    )


def decode_full(code, offset, pc=None):
    """Level-3 decode: full explicit operands.

    ``pc`` is the address of the instruction in its address space (used
    to materialize absolute targets from PC-relative displacements); it
    defaults to ``offset``, which is correct when the buffer's index 0 is
    address 0.  Returns a :class:`DecodedInstr`.
    """
    if pc is None:
        pc = offset
    tmpl, opbase, prefixes, body, end = _parse_shape(code, offset)
    form = tmpl.form
    length = end - offset
    i = body
    operands = ()
    if form == "o_r":
        operands = (RegOperand(opbase - tmpl.opbytes[-1]),)
    elif form == "o_r_i32":
        operands = (
            RegOperand(opbase - tmpl.opbytes[-1]),
            ImmOperand(_read_u32(code, i), size=4),
        )
    elif form in ("m", "m_i8", "m_i32", "m_cl"):
        rm_op, _reg_field, i = _decode_modrm(code, i, tmpl.mem_size)
        if form == "m":
            operands = (rm_op,)
        elif form == "m_i8":
            operands = (rm_op, ImmOperand(_read_s8(code, i), size=1))
        elif form == "m_i32":
            operands = (rm_op, ImmOperand(_read_u32(code, i), size=4))
        else:  # m_cl: count implicitly in ECX
            operands = (rm_op, RegOperand(1))
    elif form == "rm":
        rm_op, reg_field, i = _decode_modrm(code, i, tmpl.mem_size)
        operands = (RegOperand(reg_field), rm_op)
    elif form == "mr":
        rm_op, reg_field, i = _decode_modrm(code, i, tmpl.mem_size)
        operands = (rm_op, RegOperand(reg_field))
    elif form == "rel8":
        operands = (PcOperand(pc + length + _read_s8(code, i)),)
    elif form == "rel32":
        operands = (PcOperand(pc + length + _read_s32(code, i)),)
    elif form == "i8":
        operands = (ImmOperand(_read_s8(code, i), size=1),)
    elif form == "i32":
        operands = (ImmOperand(_read_u32(code, i), size=4),)
    elif form != "none":
        raise AssertionError("unknown template form %r" % (form,))

    info = OP_INFO[tmpl.opcode]
    return DecodedInstr(tmpl.opcode, operands, tuple(prefixes), length, info.eflags)
