"""RIO-32 instruction encoder.

Encoding an instruction from operands is the expensive path (the paper's
Level 4): the encoder must walk the opcode's template list and find the
first form whose constraints the operands satisfy — compact
register-in-opcode forms, sign-extended 8-bit immediates, 8- vs 32-bit
branch displacements.  This is why the runtime prefers to keep raw bits
valid and copy them (Levels 0–3).
"""

from repro.isa.operands import RegOperand, ImmOperand, MemOperand, PcOperand
from repro.isa.opcodes import Opcode
from repro.isa.registers import Reg
from repro.isa.templates import ENCODE_TEMPLATES


class EncodeError(Exception):
    """No encoding template matches the instruction's operands."""


def _fits_i8(value):
    value &= 0xFFFFFFFF
    signed = value - 0x100000000 if value >= 0x80000000 else value
    return -128 <= signed <= 127


def _le32(value):
    return (value & 0xFFFFFFFF).to_bytes(4, "little")


def _i8(value):
    return bytes(((value & 0xFF),))


def _encode_modrm(reg_field, rm_op):
    """Encode the ModRM byte (plus SIB/displacement) for one r/m operand."""
    out = bytearray()
    if isinstance(rm_op, RegOperand):
        out.append((0b11 << 6) | (reg_field << 3) | int(rm_op.reg))
        return bytes(out)
    if not isinstance(rm_op, MemOperand):
        raise EncodeError("r/m operand must be register or memory: %r" % (rm_op,))

    base, index, scale, disp = rm_op.base, rm_op.index, rm_op.scale, rm_op.disp
    need_sib = index is not None or base == Reg.ESP or base is None and index is not None

    if base is None and index is None:
        # Absolute disp32: mod=00, rm=101.
        out.append((0b00 << 6) | (reg_field << 3) | 0b101)
        out += _le32(disp)
        return bytes(out)

    # Choose the mod field from the displacement size.  A base of EBP
    # cannot use the no-displacement form (that encoding means disp32
    # absolute), so it always carries at least a disp8 — same wart as
    # IA-32, and part of why boundary-finding requires a real parse.
    if disp == 0 and base is not None and base != Reg.EBP:
        mod = 0b00
    elif _fits_i8(disp):
        mod = 0b01
    else:
        mod = 0b10

    if need_sib:
        out.append((mod << 6) | (reg_field << 3) | 0b100)
        scale_bits = {1: 0, 2: 1, 4: 2, 8: 3}[scale]
        index_bits = 0b100 if index is None else int(index)
        if base is None:
            # SIB with no base: mod must be 00 and disp32 follows.
            out[-1] = (0b00 << 6) | (reg_field << 3) | 0b100
            out.append((scale_bits << 6) | (index_bits << 3) | 0b101)
            out += _le32(disp)
            return bytes(out)
        out.append((scale_bits << 6) | (index_bits << 3) | int(base))
    else:
        out.append((mod << 6) | (reg_field << 3) | int(base))

    if mod == 0b01:
        out += _i8(disp)
    elif mod == 0b10:
        out += _le32(disp)
    return bytes(out)


def _rm_matches(op, mem_size):
    if isinstance(op, RegOperand):
        return mem_size == 4
    if isinstance(op, MemOperand):
        return op.size == mem_size
    return False


def _template_matches(tmpl, operands, pc, prefix_len=0):
    form = tmpl.form
    if form == "none":
        return not operands
    if form == "o_r":
        return len(operands) == 1 and isinstance(operands[0], RegOperand)
    if form == "o_r_i32":
        return (
            len(operands) == 2
            and isinstance(operands[0], RegOperand)
            and isinstance(operands[1], ImmOperand)
        )
    if form == "m":
        return len(operands) == 1 and _rm_matches(operands[0], tmpl.mem_size)
    if form == "m_i8":
        return (
            len(operands) == 2
            and _rm_matches(operands[0], tmpl.mem_size)
            and isinstance(operands[1], ImmOperand)
            and _fits_i8(operands[1].value)
        )
    if form == "m_i32":
        return (
            len(operands) == 2
            and _rm_matches(operands[0], tmpl.mem_size)
            and isinstance(operands[1], ImmOperand)
        )
    if form == "m_cl":
        return (
            len(operands) == 2
            and _rm_matches(operands[0], tmpl.mem_size)
            and isinstance(operands[1], RegOperand)
            and operands[1].reg == Reg.ECX
        )
    if form == "rm":
        if len(operands) != 2 or not isinstance(operands[0], RegOperand):
            return False
        if tmpl.opcode == Opcode.LEA:
            return isinstance(operands[1], MemOperand)
        return _rm_matches(operands[1], tmpl.mem_size)
    if form == "mr":
        return (
            len(operands) == 2
            and _rm_matches(operands[0], tmpl.mem_size)
            and isinstance(operands[1], RegOperand)
        )
    if form in ("rel8", "rel32"):
        if len(operands) != 1 or not isinstance(operands[0], PcOperand):
            return False
        if form == "rel32":
            return True
        if pc is None:
            return False
        length = prefix_len + len(tmpl.opbytes) + 1
        rel = (operands[0].pc - (pc + length)) & 0xFFFFFFFF
        return _fits_i8(rel)
    if form == "i8":
        return (
            len(operands) == 1
            and isinstance(operands[0], ImmOperand)
            and _fits_i8(operands[0].value)
        )
    if form == "i32":
        return len(operands) == 1 and isinstance(operands[0], ImmOperand)
    raise AssertionError("unknown template form %r" % (form,))


def _emit(tmpl, operands, pc, prefixes):
    out = bytearray(prefixes)
    form = tmpl.form
    opbytes = tmpl.opbytes
    if form in ("o_r", "o_r_i32"):
        out += opbytes[:-1]
        out.append(opbytes[-1] + int(operands[0].reg))
        if form == "o_r_i32":
            out += _le32(operands[1].value)
        return bytes(out)
    out += opbytes
    if form == "none":
        return bytes(out)
    if form in ("m", "m_i8", "m_i32", "m_cl"):
        out += _encode_modrm(tmpl.digit, operands[0])
        if form == "m_i8":
            out += _i8(operands[1].value)
        elif form == "m_i32":
            out += _le32(operands[1].value)
        return bytes(out)
    if form == "rm":
        out += _encode_modrm(int(operands[0].reg), operands[1])
        return bytes(out)
    if form == "mr":
        out += _encode_modrm(int(operands[1].reg), operands[0])
        return bytes(out)
    if form in ("rel8", "rel32"):
        disp_size = 1 if form == "rel8" else 4
        length = len(prefixes) + len(opbytes) + disp_size
        if pc is None:
            raise EncodeError(
                "PC-relative encoding of %s requires a placement address"
                % tmpl.opcode.name
            )
        rel = operands[0].pc - (pc + length)
        out += _i8(rel) if form == "rel8" else _le32(rel)
        return bytes(out)
    if form == "i8":
        out += _i8(operands[0].value)
        return bytes(out)
    if form == "i32":
        out += _le32(operands[0].value)
        return bytes(out)
    raise AssertionError("unknown template form %r" % (form,))


def encode_instr(opcode, operands, pc=None, prefixes=(), allow_short=True):
    """Encode one instruction to machine bytes.

    ``operands`` is the tuple of *explicit* operands in canonical order
    (see ``repro.ir.instr.Instr.explicit_operands``).  ``pc`` is the
    address the instruction will be placed at — required for PC-relative
    branch targets.  With ``allow_short=False`` the 8-bit displacement
    branch forms are skipped, giving a stable worst-case length that
    two-pass emitters rely on.  Returns ``bytes``.
    """
    opcode = Opcode(opcode)
    if opcode == Opcode.LABEL:
        return b""
    templates = ENCODE_TEMPLATES.get(opcode)
    if not templates:
        raise EncodeError("opcode %s has no encodings" % opcode.name)
    operands = tuple(operands)
    prefixes = bytes(prefixes)
    for tmpl in templates:
        if not allow_short and tmpl.form == "rel8":
            continue
        if _template_matches(tmpl, operands, pc, prefix_len=len(prefixes)):
            return _emit(tmpl, operands, pc, prefixes)
    raise EncodeError(
        "no template for %s with operands %r" % (opcode.name, operands)
    )


def encoded_length(opcode, operands, pc=None, prefixes=(), allow_short=True):
    """Length in bytes that :func:`encode_instr` would produce."""
    return len(
        encode_instr(
            opcode, operands, pc=pc, prefixes=prefixes, allow_short=allow_short
        )
    )
