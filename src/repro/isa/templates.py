"""Encoding templates shared by the RIO-32 encoder and decoder.

Each opcode has an ordered list of templates; the encoder walks the list
and picks the first whose operand constraints match ("template search",
the cost the paper's Table 2 attributes to encoding Level-4 instructions).
Compact forms are listed first so the encoder naturally produces the
short encodings (``inc r`` = 1 byte, ``push r`` = 1 byte, sign-extended
imm8 arithmetic = 3 bytes).

Template *forms* describe the byte layout after the opcode bytes:

==========  ==========================================================
``none``    nothing
``o_r``     register encoded in the low 3 bits of the last opcode byte
``o_r_i32`` as ``o_r`` plus a 32-bit immediate
``m``       ModRM with the /digit in the reg field, one r/m operand
``m_i8``    ``m`` plus an 8-bit immediate (sign-extended)
``m_i32``   ``m`` plus a 32-bit immediate
``m_cl``    ``m``; the shift count is implicitly in CL
``rm``      ModRM; reg field = operand 0 (register), r/m = operand 1
``mr``      ModRM; r/m = operand 0, reg field = operand 1 (register)
``rel8``    8-bit PC-relative displacement
``rel32``   32-bit PC-relative displacement
``i8``      8-bit immediate only
``i32``     32-bit immediate only
==========  ==========================================================
"""

from repro.isa.opcodes import Opcode, JCC_CONDITION


class Template:
    """One encodable form of an opcode."""

    __slots__ = ("opcode", "form", "opbytes", "digit", "mem_size")

    def __init__(self, opcode, form, opbytes, digit=None, mem_size=4):
        self.opcode = opcode
        self.form = form
        self.opbytes = bytes(opbytes)
        self.digit = digit
        self.mem_size = mem_size

    def __repr__(self):
        return "<Template %s/%s %s>" % (
            self.opcode.name,
            self.form,
            self.opbytes.hex(),
        )


def _t(opcode, form, opbytes, digit=None, mem_size=4):
    return Template(opcode, form, opbytes, digit=digit, mem_size=mem_size)


# Ordered template lists: compact forms first.
ENCODE_TEMPLATES = {
    Opcode.MOV: [
        _t(Opcode.MOV, "o_r_i32", [0xB8]),
        _t(Opcode.MOV, "m_i32", [0xC7], digit=0),
        _t(Opcode.MOV, "rm", [0x8B]),
        _t(Opcode.MOV, "mr", [0x89]),
    ],
    Opcode.MOVB_STORE: [_t(Opcode.MOVB_STORE, "mr", [0x88], mem_size=1)],
    Opcode.MOVZX: [
        _t(Opcode.MOVZX, "rm", [0x0F, 0xB6], mem_size=1),
        _t(Opcode.MOVZX, "rm", [0x0F, 0xB7], mem_size=2),
    ],
    Opcode.MOVSX: [
        _t(Opcode.MOVSX, "rm", [0x0F, 0xBE], mem_size=1),
        _t(Opcode.MOVSX, "rm", [0x0F, 0xBF], mem_size=2),
    ],
    Opcode.LEA: [_t(Opcode.LEA, "rm", [0x8D])],
    Opcode.XCHG: [_t(Opcode.XCHG, "mr", [0x87])],
    Opcode.PUSH: [
        _t(Opcode.PUSH, "o_r", [0x50]),
        _t(Opcode.PUSH, "i8", [0x6A]),
        _t(Opcode.PUSH, "i32", [0x68]),
        _t(Opcode.PUSH, "m", [0xFF], digit=6),
    ],
    Opcode.POP: [
        _t(Opcode.POP, "o_r", [0x58]),
        _t(Opcode.POP, "m", [0x8F], digit=0),
    ],
    Opcode.ADD: [
        _t(Opcode.ADD, "m_i8", [0x83], digit=0),
        _t(Opcode.ADD, "m_i32", [0x81], digit=0),
        _t(Opcode.ADD, "rm", [0x03]),
        _t(Opcode.ADD, "mr", [0x01]),
    ],
    Opcode.OR: [
        _t(Opcode.OR, "m_i8", [0x83], digit=1),
        _t(Opcode.OR, "m_i32", [0x81], digit=1),
        _t(Opcode.OR, "rm", [0x0B]),
        _t(Opcode.OR, "mr", [0x09]),
    ],
    Opcode.AND: [
        _t(Opcode.AND, "m_i8", [0x83], digit=4),
        _t(Opcode.AND, "m_i32", [0x81], digit=4),
        _t(Opcode.AND, "rm", [0x23]),
        _t(Opcode.AND, "mr", [0x21]),
    ],
    Opcode.SUB: [
        _t(Opcode.SUB, "m_i8", [0x83], digit=5),
        _t(Opcode.SUB, "m_i32", [0x81], digit=5),
        _t(Opcode.SUB, "rm", [0x2B]),
        _t(Opcode.SUB, "mr", [0x29]),
    ],
    Opcode.XOR: [
        _t(Opcode.XOR, "m_i8", [0x83], digit=6),
        _t(Opcode.XOR, "m_i32", [0x81], digit=6),
        _t(Opcode.XOR, "rm", [0x33]),
        _t(Opcode.XOR, "mr", [0x31]),
    ],
    Opcode.CMP: [
        _t(Opcode.CMP, "m_i8", [0x83], digit=7),
        _t(Opcode.CMP, "m_i32", [0x81], digit=7),
        _t(Opcode.CMP, "rm", [0x3B]),
        _t(Opcode.CMP, "mr", [0x39]),
    ],
    Opcode.TEST: [
        _t(Opcode.TEST, "m_i32", [0xF7], digit=0),
        _t(Opcode.TEST, "mr", [0x85]),
    ],
    Opcode.INC: [
        _t(Opcode.INC, "o_r", [0x40]),
        _t(Opcode.INC, "m", [0xFF], digit=0),
    ],
    Opcode.DEC: [
        _t(Opcode.DEC, "o_r", [0x48]),
        _t(Opcode.DEC, "m", [0xFF], digit=1),
    ],
    Opcode.NOT: [_t(Opcode.NOT, "m", [0xF7], digit=2)],
    Opcode.NEG: [_t(Opcode.NEG, "m", [0xF7], digit=3)],
    Opcode.DIV: [_t(Opcode.DIV, "m", [0xF7], digit=6)],
    Opcode.SHL: [
        _t(Opcode.SHL, "m_i8", [0xC1], digit=4),
        _t(Opcode.SHL, "m_cl", [0xD3], digit=4),
    ],
    Opcode.SHR: [
        _t(Opcode.SHR, "m_i8", [0xC1], digit=5),
        _t(Opcode.SHR, "m_cl", [0xD3], digit=5),
    ],
    Opcode.SAR: [
        _t(Opcode.SAR, "m_i8", [0xC1], digit=7),
        _t(Opcode.SAR, "m_cl", [0xD3], digit=7),
    ],
    Opcode.IMUL: [_t(Opcode.IMUL, "rm", [0x0F, 0xAF])],
    Opcode.FLD: [_t(Opcode.FLD, "rm", [0x0F, 0x10])],
    Opcode.FST: [_t(Opcode.FST, "mr", [0x0F, 0x11])],
    Opcode.FADD: [_t(Opcode.FADD, "rm", [0x0F, 0x58])],
    Opcode.FMUL: [_t(Opcode.FMUL, "rm", [0x0F, 0x59])],
    Opcode.FSUB: [_t(Opcode.FSUB, "rm", [0x0F, 0x5C])],
    Opcode.FDIV: [_t(Opcode.FDIV, "rm", [0x0F, 0x5E])],
    Opcode.JMP: [
        _t(Opcode.JMP, "rel8", [0xEB]),
        _t(Opcode.JMP, "rel32", [0xE9]),
    ],
    Opcode.JMP_IND: [_t(Opcode.JMP_IND, "m", [0xFF], digit=4)],
    Opcode.CALL: [_t(Opcode.CALL, "rel32", [0xE8])],
    Opcode.CALL_IND: [_t(Opcode.CALL_IND, "m", [0xFF], digit=2)],
    Opcode.RET: [_t(Opcode.RET, "none", [0xC3])],
    Opcode.IRET: [_t(Opcode.IRET, "none", [0xCF])],
    Opcode.NOP: [_t(Opcode.NOP, "none", [0x90])],
    Opcode.HALT: [_t(Opcode.HALT, "none", [0xF4])],
    Opcode.SYSCALL: [_t(Opcode.SYSCALL, "none", [0xF1])],
}

for _jcc, _cc in JCC_CONDITION.items():
    ENCODE_TEMPLATES[_jcc] = [
        _t(_jcc, "rel8", [0x70 + _cc]),
        _t(_jcc, "rel32", [0x0F, 0x80 + _cc]),
    ]


# Prefix bytes the decoder accepts (semantically inert in RIO-32, present
# so that prefix plumbing — instr_get_prefixes/instr_set_prefixes in the
# paper's Figure 3 — has real substance).
PREFIX_LOCK = 0xF0
PREFIX_DATA16 = 0x66
PREFIXES = frozenset((PREFIX_LOCK, PREFIX_DATA16))


def _build_decode_maps():
    """Build byte-indexed decode maps from the encode templates.

    Returns ``(one_byte, two_byte)`` where each maps an opcode byte to
    either a single :class:`Template` (register-in-opcode forms expand to
    eight entries each) or, for group opcodes, a dict ``digit → Template``.
    """
    one_byte = {}
    two_byte = {}

    def install(tmpl):
        opbytes = tmpl.opbytes
        if opbytes[0] == 0x0F:
            target, key = two_byte, opbytes[1]
        else:
            target, key = one_byte, opbytes[0]
        if tmpl.form in ("o_r", "o_r_i32"):
            for r in range(8):
                k = key + r
                if k in target:
                    raise AssertionError("decode conflict at byte 0x%02x" % k)
                target[k] = tmpl
            return
        if tmpl.digit is not None:
            group = target.setdefault(key, {})
            if not isinstance(group, dict) or tmpl.digit in group:
                raise AssertionError("decode conflict at byte 0x%02x" % key)
            group[tmpl.digit] = tmpl
            return
        if key in target:
            raise AssertionError("decode conflict at byte 0x%02x" % key)
        target[key] = tmpl

    for templates in ENCODE_TEMPLATES.values():
        for tmpl in templates:
            install(tmpl)
    return one_byte, two_byte


DECODE_ONE_BYTE, DECODE_TWO_BYTE = _build_decode_maps()


def has_template(opcode):
    """Whether the opcode has at least one encoder template.

    LABEL (and any future pseudo-opcode) has none: it must never reach
    the encoder.  The fragment verifier uses this to reject instruction
    lists that cannot be lowered into the code cache.
    """
    return opcode in ENCODE_TEMPLATES and bool(ENCODE_TEMPLATES[opcode])

# Maximum encoded instruction length: prefix + 2 opcode + modrm + sib +
# disp32 + imm32.
MAX_INSTR_LENGTH = 12
