"""RIO-32: a synthetic variable-length CISC ISA modeled on IA-32.

RIO-32 reproduces the structural properties of IA-32 that the DynamoRIO
paper's design responds to:

* variable-length instructions (1..10 bytes) whose boundaries require a
  real scan to find;
* compact encodings for common forms (``inc r`` is one byte, ``add r, 1``
  is three), so encoding requires a template search;
* a six-bit condition-code register (eflags) that most arithmetic
  instructions write and conditional branches read, making flags liveness
  the central hazard for code transformations;
* ModRM/SIB-style memory operands (base + index*scale + displacement);
* implicit operands (``push`` reads and writes ``esp``).

The package exposes the register file, eflags masks, operand kinds, the
opcode table, and the encoder/decoder.
"""

from repro.isa.registers import Reg, REG_NAMES, NUM_REGS
from repro.isa.eflags import (
    EFLAGS_READ_CF,
    EFLAGS_READ_PF,
    EFLAGS_READ_AF,
    EFLAGS_READ_ZF,
    EFLAGS_READ_SF,
    EFLAGS_READ_OF,
    EFLAGS_WRITE_CF,
    EFLAGS_WRITE_PF,
    EFLAGS_WRITE_AF,
    EFLAGS_WRITE_ZF,
    EFLAGS_WRITE_SF,
    EFLAGS_WRITE_OF,
    EFLAGS_READ_ALL,
    EFLAGS_WRITE_ALL,
    EFLAGS_READ_ARITH,
    EFLAGS_WRITE_ARITH,
    eflags_to_string,
)
from repro.isa.operands import Operand, RegOperand, ImmOperand, MemOperand, PcOperand
from repro.isa.opcodes import Opcode, OpcodeInfo, opcode_info, OP_INFO
from repro.isa.encoder import encode_instr, EncodeError
from repro.isa.decoder import (
    decode_boundary,
    decode_opcode,
    decode_full,
    DecodeError,
)

__all__ = [
    "Reg",
    "REG_NAMES",
    "NUM_REGS",
    "EFLAGS_READ_CF",
    "EFLAGS_READ_PF",
    "EFLAGS_READ_AF",
    "EFLAGS_READ_ZF",
    "EFLAGS_READ_SF",
    "EFLAGS_READ_OF",
    "EFLAGS_WRITE_CF",
    "EFLAGS_WRITE_PF",
    "EFLAGS_WRITE_AF",
    "EFLAGS_WRITE_ZF",
    "EFLAGS_WRITE_SF",
    "EFLAGS_WRITE_OF",
    "EFLAGS_READ_ALL",
    "EFLAGS_WRITE_ALL",
    "EFLAGS_READ_ARITH",
    "EFLAGS_WRITE_ARITH",
    "eflags_to_string",
    "Operand",
    "RegOperand",
    "ImmOperand",
    "MemOperand",
    "PcOperand",
    "Opcode",
    "OpcodeInfo",
    "opcode_info",
    "OP_INFO",
    "encode_instr",
    "EncodeError",
    "decode_boundary",
    "decode_opcode",
    "decode_full",
    "DecodeError",
]
