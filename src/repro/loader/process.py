"""Process address-space layout.

The layout keeps four application areas and two runtime areas strictly
disjoint.  The runtime areas exist so the transparency requirement is
*checkable*: the runtime allocates its heap and code cache only inside
its own regions, and tests assert that application loads/stores never
touch them (and vice versa).

=================  ======================  =========================
area               default placement       owner
=================  ======================  =========================
application code   0x0000_1000             loader (read-only)
application data   0x0010_0000 (4 MiB)     loader / program
application stack  up to 0x0080_0000       program (grows down)
application heap   0x0080_0000 (4 MiB)     program ``brk``-style
runtime heap       0x0100_0000 (4 MiB)     DynamoRIO reproduction
code cache         0x0140_0000 (8 MiB)     DynamoRIO reproduction
=================  ======================  =========================
"""

from repro.machine.memory import Memory


class Layout:
    """Address-space constants (overridable for tests)."""

    CODE_BASE = 0x0000_1000
    DATA_BASE = 0x0010_0000
    DATA_SIZE = 0x0040_0000
    STACK_TOP = 0x0080_0000
    STACK_SIZE = 0x0010_0000
    APP_HEAP_BASE = 0x0080_0000
    APP_HEAP_SIZE = 0x0040_0000
    RUNTIME_HEAP_BASE = 0x0100_0000
    RUNTIME_HEAP_SIZE = 0x0040_0000
    CODE_CACHE_BASE = 0x0140_0000
    CODE_CACHE_SIZE = 0x0080_0000
    MEMORY_SIZE = 0x0200_0000  # 32 MiB


class Process:
    """A loaded program: memory + entry point + layout bookkeeping."""

    def __init__(self, image, layout=None, memory=None):
        self.layout = layout if layout is not None else Layout()
        self.memory = (
            memory if memory is not None else Memory(self.layout.MEMORY_SIZE)
        )
        self.image = image
        self.entry = image.entry
        lay = self.layout
        code_lo, code_hi = image.code_bounds()
        code_size = max(code_hi - lay.CODE_BASE, 0x1000)
        self.memory.add_region("app_code", lay.CODE_BASE, code_size, writable=False)
        self.memory.add_region("app_data", lay.DATA_BASE, lay.DATA_SIZE)
        self.memory.add_region(
            "app_stack", lay.STACK_TOP - lay.STACK_SIZE, lay.STACK_SIZE
        )
        self.memory.add_region("app_heap", lay.APP_HEAP_BASE, lay.APP_HEAP_SIZE)
        image.load_into(self.memory)
        self._brk = lay.APP_HEAP_BASE

    def initial_stack_pointer(self):
        """Aligned initial esp, a little below the stack top."""
        return self.layout.STACK_TOP - 16

    def sbrk(self, size):
        """Trivial bump allocator over the application heap (tests)."""
        addr = self._brk
        self._brk += (size + 15) & ~15
        if self._brk > self.layout.APP_HEAP_BASE + self.layout.APP_HEAP_SIZE:
            raise MemoryError("application heap exhausted")
        return addr

    def fresh_copy(self):
        """A new process with freshly loaded memory (for repeat runs)."""
        return Process(self.image, layout=self.layout)
