"""Binary images and process address-space layout."""

from repro.loader.image import Image, Section
from repro.loader.process import Process, Layout

__all__ = ["Image", "Section", "Process", "Layout"]
