"""A loadable binary image: sections + entry point + symbols.

RIO-32 images are deliberately minimal — the runtime operates on
*unmodified* binaries, so all an image carries is bytes at addresses.
Symbols exist purely for tooling (tests, disassembly listings); the
runtime never reads them, mirroring the paper's constraint that no
compiler cooperation is available.
"""

from repro.machine.errors import MachineFault


class Section:
    """A named span of initialized bytes."""

    __slots__ = ("name", "addr", "data", "writable")

    def __init__(self, name, addr, data, writable=False):
        self.name = name
        self.addr = addr
        self.data = bytes(data)
        self.writable = writable

    @property
    def end(self):
        return self.addr + len(self.data)

    def __repr__(self):
        return "<Section %s [0x%x, 0x%x)>" % (self.name, self.addr, self.end)


class Image:
    """An executable image."""

    def __init__(self, entry=0):
        self.entry = entry
        self.sections = []
        self.symbols = {}

    def add_section(self, name, addr, data, writable=False):
        new = Section(name, addr, data, writable=writable)
        for sec in self.sections:
            if new.addr < sec.end and sec.addr < new.end:
                raise MachineFault(
                    "section %s overlaps %s" % (new, sec)
                )
        self.sections.append(new)
        return new

    def add_symbol(self, name, addr):
        self.symbols[name] = addr

    def symbol(self, name):
        return self.symbols[name]

    def load_into(self, memory):
        """Copy all sections into memory."""
        for sec in self.sections:
            memory.write_bytes(sec.addr, sec.data)

    def code_bounds(self):
        """(lowest, highest) address across executable (non-writable)
        sections; used by tests and tooling only."""
        code = [s for s in self.sections if not s.writable]
        if not code:
            return (0, 0)
        return (min(s.addr for s in code), max(s.end for s in code))
